package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one constant name="value" pair attached to a metric at
// registration time.
type Label struct {
	Key, Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing metric. Updates are a single
// atomic add; Counters are safe for concurrent use.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n; negative deltas are ignored (counters only go up).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a metric that can go up and down. Updates are a single atomic
// operation; Gauges are safe for concurrent use.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add applies a delta (may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket distribution metric. Observations are a few
// atomic operations (bucket increment, count increment, CAS-loop sum add)
// with no locks; Histograms are safe for concurrent use.
type Histogram struct {
	bounds  []float64 // ascending upper bounds; an implicit +Inf bucket follows
	buckets []atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits of the observation sum
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v (le semantics)
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// DefBuckets is the default histogram bucket layout, spanning sub-unit
// access costs through long query latencies.
var DefBuckets = []float64{.001, .005, .01, .05, .1, .5, 1, 2.5, 5, 10, 25, 50, 100}

type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// metric is one registered series: a name, a rendered label set, and
// exactly one of the value holders.
type metric struct {
	name   string
	help   string
	labels string // pre-rendered {k="v",...} or ""
	kind   metricKind

	counter   *Counter
	gauge     *Gauge
	histogram *Histogram
}

// Registry holds named metrics and renders them in the Prometheus text
// exposition format. Metric updates through the returned handles are
// lock-free; registration and exposition synchronize on an internal
// mutex (both are off the access hot path).
type Registry struct {
	mu     sync.RWMutex
	byKey  map[string]*metric
	sorted bool
	all    []*metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byKey: make(map[string]*metric)}
}

func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(a, b int) bool { return ls[a].Key < ls[b].Key })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		escapeLabelValue(&b, l.Value)
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabelValue(b *strings.Builder, v string) {
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
}

// lookup returns the series for (name, labels), creating it with the
// given kind (and, for histograms, bucket bounds) when absent. A name
// re-registered with a different kind yields a fresh detached series
// (updatable but never exposed) so callers stay panic-free on the serving
// path; tests catch such collisions via the golden exposition.
func (r *Registry) lookup(name, help string, labels []Label, kind metricKind, buckets []float64) *metric {
	key := name + renderLabels(labels)
	r.mu.RLock()
	m := r.byKey[key]
	r.mu.RUnlock()
	if m != nil && m.kind == kind {
		return m
	}
	if m != nil { // kind collision: detached series
		return newMetric(name, help, labels, kind, buckets)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m = r.byKey[key]; m != nil { // lost the registration race
		if m.kind == kind {
			return m
		}
		return newMetric(name, help, labels, kind, buckets)
	}
	m = newMetric(name, help, labels, kind, buckets)
	r.byKey[key] = m
	r.all = append(r.all, m)
	r.sorted = false
	return m
}

func newMetric(name, help string, labels []Label, kind metricKind, buckets []float64) *metric {
	m := &metric{name: name, help: help, labels: renderLabels(labels), kind: kind}
	switch kind {
	case kindCounter:
		m.counter = &Counter{}
	case kindGauge:
		m.gauge = &Gauge{}
	case kindHistogram:
		bounds := normalizeBuckets(buckets)
		m.histogram = &Histogram{bounds: bounds, buckets: make([]atomic.Int64, len(bounds)+1)}
	}
	return m
}

// normalizeBuckets sorts and deduplicates bounds so le labels stay unique;
// nil means DefBuckets.
func normalizeBuckets(buckets []float64) []float64 {
	if buckets == nil {
		buckets = DefBuckets
	}
	bs := append([]float64(nil), buckets...)
	sort.Float64s(bs)
	out := bs[:0]
	for _, b := range bs {
		if len(out) == 0 || b != out[len(out)-1] {
			out = append(out, b)
		}
	}
	return out
}

// Counter returns the counter registered under the name and label set,
// creating it on first use.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	return r.lookup(name, help, labels, kindCounter, nil).counter
}

// Gauge returns the gauge registered under the name and label set,
// creating it on first use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	return r.lookup(name, help, labels, kindGauge, nil).gauge
}

// Histogram returns the histogram registered under the name and label
// set, creating it on first use with the given bucket upper bounds
// (DefBuckets when nil). Buckets are fixed at first registration; later
// calls with different buckets return the existing series unchanged.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	return r.lookup(name, help, labels, kindHistogram, buckets).histogram
}

// snapshot returns the registered series sorted by (name, labels). The
// lock is released before any value is read or written out, so a slow
// scrape never blocks registration or updates.
func (r *Registry) snapshot() []*metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.sorted {
		sort.Slice(r.all, func(a, b int) bool {
			if r.all[a].name != r.all[b].name {
				return r.all[a].name < r.all[b].name
			}
			return r.all[a].labels < r.all[b].labels
		})
		r.sorted = true
	}
	return append([]*metric(nil), r.all...)
}

func formatFloat(v float64) string {
	if math.IsInf(v, +1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders every registered series in the Prometheus text
// exposition format (version 0.0.4), sorted by name then label set, with
// one HELP/TYPE header per metric name. Values are individually atomic
// snapshots; the exposition does not freeze the registry as a whole.
// Output streams directly into w (no full-exposition intermediate), so
// callers that pass a recycled buffer get a garbage-free scrape.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	lastName := ""
	for _, m := range r.snapshot() {
		if m.name != lastName {
			if m.help != "" {
				fmt.Fprintf(bw, "# HELP %s %s\n", m.name, m.help)
			}
			fmt.Fprintf(bw, "# TYPE %s %s\n", m.name, m.kind)
			lastName = m.name
		}
		switch m.kind {
		case kindCounter:
			fmt.Fprintf(bw, "%s%s %d\n", m.name, m.labels, m.counter.Value())
		case kindGauge:
			fmt.Fprintf(bw, "%s%s %d\n", m.name, m.labels, m.gauge.Value())
		case kindHistogram:
			writeHistogram(bw, m)
		}
	}
	return bw.Flush()
}

// writeHistogram renders cumulative le buckets, sum, and count. The
// per-bucket atomic loads happen once, so the cumulative counts are
// internally consistent even under concurrent observation.
func writeHistogram(b io.Writer, m *metric) {
	h := m.histogram
	inner := strings.TrimSuffix(strings.TrimPrefix(m.labels, "{"), "}")
	withLe := func(le string) string {
		if inner == "" {
			return `{le="` + le + `"}`
		}
		return "{" + inner + `,le="` + le + `"}`
	}
	cum := int64(0)
	for i, bound := range h.bounds {
		cum += h.buckets[i].Load()
		fmt.Fprintf(b, "%s_bucket%s %d\n", m.name, withLe(formatFloat(bound)), cum)
	}
	cum += h.buckets[len(h.bounds)].Load()
	fmt.Fprintf(b, "%s_bucket%s %d\n", m.name, withLe("+Inf"), cum)
	fmt.Fprintf(b, "%s_sum%s %s\n", m.name, m.labels, formatFloat(h.Sum()))
	fmt.Fprintf(b, "%s_count%s %d\n", m.name, m.labels, h.Count())
}

// ServeHTTP exposes the registry as a Prometheus scrape endpoint.
func (r *Registry) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = r.WritePrometheus(w)
}
