package obs

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestWritePrometheusGolden pins the full text exposition of a small
// registry: header placement, label rendering and escaping, cumulative
// histogram buckets with +Inf, and name-then-labels ordering. The format
// is a wire contract (Prometheus text exposition 0.0.4), so the test is a
// byte-for-byte golden.
func TestWritePrometheusGolden(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("topk_queries_total", "Queries served by status.", L("status", "ok")).Add(3)
	reg.Counter("topk_queries_total", "Queries served by status.", L("status", "error")).Inc()
	reg.Gauge("topk_executor_inflight", "Concurrent accesses currently in flight.").Set(7)
	h := reg.Histogram("topk_access_cost_units", "Per-access billed cost in cost units.", []float64{1, 10})
	h.Observe(0.5)
	h.Observe(1)
	h.Observe(5)
	h.Observe(50)
	reg.Counter("odd_label_total", "Escaping check.", L("path", `a"b\c`+"\n"))

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP odd_label_total Escaping check.
# TYPE odd_label_total counter
odd_label_total{path="a\"b\\c\n"} 0
# HELP topk_access_cost_units Per-access billed cost in cost units.
# TYPE topk_access_cost_units histogram
topk_access_cost_units_bucket{le="1"} 2
topk_access_cost_units_bucket{le="10"} 3
topk_access_cost_units_bucket{le="+Inf"} 4
topk_access_cost_units_sum 56.5
topk_access_cost_units_count 4
# HELP topk_executor_inflight Concurrent accesses currently in flight.
# TYPE topk_executor_inflight gauge
topk_executor_inflight 7
# HELP topk_queries_total Queries served by status.
# TYPE topk_queries_total counter
topk_queries_total{status="error"} 1
topk_queries_total{status="ok"} 3
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("c_total", "help")
	b := reg.Counter("c_total", "help")
	if a != b {
		t.Error("same name+labels must return the same counter")
	}
	if reg.Counter("c_total", "help", L("k", "v")) == a {
		t.Error("different label set must be a distinct series")
	}
	// Histogram buckets are fixed at first registration.
	h1 := reg.Histogram("h", "help", []float64{1, 2})
	h2 := reg.Histogram("h", "help", []float64{5})
	if h1 != h2 {
		t.Error("re-registration with different buckets must return the existing series")
	}
}

// TestRegistryKindCollision checks the panic-free degradation: a name
// re-registered as a different kind yields a usable but detached series,
// and the exposition still renders the original.
func TestRegistryKindCollision(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("x_total", "help").Add(2)
	g := reg.Gauge("x_total", "help")
	g.Set(99) // must not panic or corrupt the counter
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "x_total 2") {
		t.Errorf("original counter lost:\n%s", out)
	}
	if strings.Contains(out, "99") {
		t.Errorf("detached gauge leaked into exposition:\n%s", out)
	}
}

func TestHistogramBucketEdges(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("h", "", []float64{1, 2, 3})
	for _, v := range []float64{1, 2, 3} {
		h.Observe(v) // le semantics: v == bound lands in that bucket
	}
	h.Observe(3.5)
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	for _, line := range []string{
		`h_bucket{le="1"} 1`,
		`h_bucket{le="2"} 2`,
		`h_bucket{le="3"} 3`,
		`h_bucket{le="+Inf"} 4`,
		`h_count 4`,
	} {
		if !strings.Contains(b.String(), line) {
			t.Errorf("missing %q in:\n%s", line, b.String())
		}
	}
	if h.Sum() != 9.5 {
		t.Errorf("Sum = %g", h.Sum())
	}
}

// TestRegistryConcurrency hammers one registry from many goroutines —
// updates on shared handles, fresh registrations, and scrapes all at once —
// and then checks that no update was lost. Run under -race this doubles as
// the data-race proof for the lock-free hot path.
func TestRegistryConcurrency(t *testing.T) {
	reg := NewRegistry()
	shared := reg.Counter("shared_total", "")
	gauge := reg.Gauge("g", "")
	hist := reg.Histogram("h", "", DefBuckets)

	const workers = 8
	const perWorker = 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				shared.Inc()
				gauge.Add(1)
				gauge.Add(-1)
				hist.Observe(float64(i % 7))
				// Per-worker registrations interleave with everything else.
				reg.Counter("worker_total", "", L("w", fmt.Sprint(w))).Inc()
				if i%100 == 0 {
					var b strings.Builder
					if err := reg.WritePrometheus(&b); err != nil {
						t.Error(err)
					}
				}
			}
		}()
	}
	wg.Wait()

	if got := shared.Value(); got != workers*perWorker {
		t.Errorf("shared counter = %d, want %d", got, workers*perWorker)
	}
	if got := gauge.Value(); got != 0 {
		t.Errorf("gauge = %d, want 0", got)
	}
	if got := hist.Count(); got != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", got, workers*perWorker)
	}
	for w := 0; w < workers; w++ {
		if got := reg.Counter("worker_total", "", L("w", fmt.Sprint(w))).Value(); got != perWorker {
			t.Errorf("worker %d counter = %d, want %d", w, got, perWorker)
		}
	}
}

// TestMetricsObserver drives every Observer method through the registry
// adapter and checks the series it maintains.
func TestMetricsObserver(t *testing.T) {
	reg := NewRegistry()
	m := NewMetrics(reg)
	m.AccessDone(Sorted, 0, 1)
	m.AccessDone(Sorted, 1, 2)
	m.AccessDone(Random, 0, 10)
	m.AccessDenied(Random, 0, DenyBudget)
	m.PhaseDone(PhaseExecute, 10*time.Millisecond)
	m.PhaseDone(Phase("weird"), time.Millisecond)
	m.EstimatorEval(false)
	m.EstimatorEval(true)
	m.LoopIteration(5)
	m.InflightChange(+2)
	m.InflightChange(-1)
	m.DispatchStall()
	m.SourceRetry(time.Millisecond)
	m.SourceFailure()
	m.PlanCache(true)
	m.PlanCache(false)

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, line := range []string{
		`topk_accesses_total{kind="sorted"} 2`,
		`topk_accesses_total{kind="random"} 1`,
		`topk_access_denied_total{reason="budget"} 1`,
		`topk_estimator_evals_total{result="run"} 1`,
		`topk_estimator_evals_total{result="memo"} 1`,
		`topk_nc_iterations_total 1`,
		`topk_nc_candidates 5`,
		`topk_executor_inflight 1`,
		`topk_executor_dispatch_stalls_total 1`,
		`topk_source_retries_total 1`,
		`topk_source_failures_total 1`,
		`topk_plan_cache_requests_total{result="hit"} 1`,
		`topk_plan_cache_requests_total{result="miss"} 1`,
	} {
		if !strings.Contains(out, line) {
			t.Errorf("missing %q in exposition:\n%s", line, out)
		}
	}
	if !strings.Contains(out, `topk_phase_seconds_count{phase="execute"} 1`) ||
		!strings.Contains(out, `topk_phase_seconds_count{phase="other"} 1`) {
		t.Errorf("phase histograms missing:\n%s", out)
	}
}
