package obs

import "time"

// Metrics is an Observer that folds engine events into a Registry under
// the middleware's standard metric names (all prefixed topk_). Every
// series is registered up front, so event delivery is a handful of atomic
// operations with no registry lookups — safe and cheap on the access hot
// path.
type Metrics struct {
	accesses   [2]*Counter // by AccessKind
	accessCost *Histogram  // per-access cost units
	denied     [numDenyReasons]*Counter
	phases     map[Phase]*Histogram
	otherPhase *Histogram

	estimatorRuns *Counter
	estimatorMemo *Counter

	iterations *Counter
	candidates *Gauge

	inflight *Gauge
	stalls   *Counter

	retries  *Counter
	failures *Counter
	backoff  *Histogram

	planHits      *Counter
	planMisses    *Counter
	planEvictions *Counter

	breakerTo       [3]*Counter // transitions by resulting state
	breakerOpen     *Gauge      // circuits currently open
	degradedReplans *Counter
	shedRequests    *Counter

	replans      map[string]*Counter // adaptive re-plans by trigger
	otherReplan  *Counter
	contract     map[string]*Counter // contract violations by reason
	otherViolate *Counter
}

// NewMetrics registers the engine metric set on the registry and returns
// the observer feeding it. Multiple observers may share one registry;
// series are get-or-create.
func NewMetrics(reg *Registry) *Metrics {
	m := &Metrics{
		accessCost: reg.Histogram("topk_access_cost_units", "Per-access billed cost in cost units.",
			[]float64{0.5, 1, 2, 5, 10, 20, 50, 100}),
		estimatorRuns: reg.Counter("topk_estimator_evals_total", "Optimizer cost estimates by result.", L("result", "run")),
		estimatorMemo: reg.Counter("topk_estimator_evals_total", "Optimizer cost estimates by result.", L("result", "memo")),
		iterations:    reg.Counter("topk_nc_iterations_total", "Framework NC scheduling iterations."),
		candidates:    reg.Gauge("topk_nc_candidates", "Candidate queue size (K_P working set) at the last iteration."),
		inflight:      reg.Gauge("topk_executor_inflight", "Concurrent accesses currently in flight."),
		stalls:        reg.Counter("topk_executor_dispatch_stalls_total", "Executor rounds with free slots but no dispatchable access."),
		retries:       reg.Counter("topk_source_retries_total", "Web-source request retries."),
		failures:      reg.Counter("topk_source_failures_total", "Web-source requests that failed for good."),
		backoff: reg.Histogram("topk_source_backoff_seconds", "Retry backoff sleeps.",
			[]float64{.001, .01, .05, .1, .5, 1, 5}),
		planHits:        reg.Counter("topk_plan_cache_requests_total", "Plan-cache lookups by result.", L("result", "hit")),
		planMisses:      reg.Counter("topk_plan_cache_requests_total", "Plan-cache lookups by result.", L("result", "miss")),
		planEvictions:   reg.Counter("topk_plan_cache_evictions_total", "Plan-cache entries discarded (LRU capacity or scenario invalidation)."),
		breakerOpen:     reg.Gauge("topk_breaker_open", "Capability circuit breakers currently open."),
		degradedReplans: reg.Counter("topk_degraded_replans_total", "Engine re-plans around a degraded scenario."),
		shedRequests:    reg.Counter("topk_requests_shed_total", "Queries refused at admission (load shedding)."),
	}
	for _, st := range []BreakerState{BreakerClosed, BreakerOpen, BreakerHalfOpen} {
		m.breakerTo[st] = reg.Counter("topk_breaker_transitions_total", "Circuit-breaker state transitions by resulting state.", L("to", st.String()))
	}
	for _, k := range []AccessKind{Sorted, Random} {
		m.accesses[k] = reg.Counter("topk_accesses_total", "Billed source accesses by kind.", L("kind", k.String()))
	}
	for _, d := range DenyReasons() {
		m.denied[d] = reg.Counter("topk_access_denied_total", "Refused or failed accesses by reason.", L("reason", d.String()))
	}
	m.phases = make(map[Phase]*Histogram, 4)
	for _, p := range []Phase{PhaseParse, PhasePlan, PhaseOptimize, PhaseExecute} {
		m.phases[p] = reg.Histogram("topk_phase_seconds", "Query execution phase latency.", nil, L("phase", string(p)))
	}
	m.otherPhase = reg.Histogram("topk_phase_seconds", "Query execution phase latency.", nil, L("phase", "other"))
	m.replans = make(map[string]*Counter, len(ReplanTriggers()))
	for _, tr := range ReplanTriggers() {
		m.replans[tr] = reg.Counter("topk_replan_total", "Mid-query adaptive re-plans by trigger.", L("trigger", tr))
	}
	m.otherReplan = reg.Counter("topk_replan_total", "Mid-query adaptive re-plans by trigger.", L("trigger", "other"))
	m.contract = make(map[string]*Counter, len(ViolationReasons()))
	for _, v := range ViolationReasons() {
		m.contract[v] = reg.Counter("topk_contract_violations_total", "Source contract violations caught by the guard, by reason.", L("reason", v))
	}
	m.otherViolate = reg.Counter("topk_contract_violations_total", "Source contract violations caught by the guard, by reason.", L("reason", "other"))
	return m
}

var _ Observer = (*Metrics)(nil)

// AccessDone implements Observer.
func (m *Metrics) AccessDone(kind AccessKind, pred int, costUnits float64) {
	if int(kind) < len(m.accesses) {
		m.accesses[kind].Inc()
	}
	m.accessCost.Observe(costUnits)
}

// AccessDenied implements Observer.
func (m *Metrics) AccessDenied(kind AccessKind, pred int, reason DenyReason) {
	if int(reason) < numDenyReasons {
		m.denied[reason].Inc()
	}
}

// PhaseDone implements Observer.
func (m *Metrics) PhaseDone(phase Phase, d time.Duration) {
	h, ok := m.phases[phase]
	if !ok {
		h = m.otherPhase
	}
	h.Observe(d.Seconds())
}

// EstimatorEval implements Observer.
func (m *Metrics) EstimatorEval(memoHit bool) {
	if memoHit {
		m.estimatorMemo.Inc()
	} else {
		m.estimatorRuns.Inc()
	}
}

// LoopIteration implements Observer.
func (m *Metrics) LoopIteration(candidates int) {
	m.iterations.Inc()
	m.candidates.Set(int64(candidates))
}

// InflightChange implements Observer.
func (m *Metrics) InflightChange(delta int) { m.inflight.Add(int64(delta)) }

// DispatchStall implements Observer.
func (m *Metrics) DispatchStall() { m.stalls.Inc() }

// SourceRetry implements Observer.
func (m *Metrics) SourceRetry(backoff time.Duration) {
	m.retries.Inc()
	m.backoff.Observe(backoff.Seconds())
}

// SourceFailure implements Observer.
func (m *Metrics) SourceFailure() { m.failures.Inc() }

// PlanCache implements Observer.
func (m *Metrics) PlanCache(hit bool) {
	if hit {
		m.planHits.Inc()
	} else {
		m.planMisses.Inc()
	}
}

// PlanCacheEvict implements Observer.
func (m *Metrics) PlanCacheEvict() { m.planEvictions.Inc() }

// BreakerTransition implements Observer.
func (m *Metrics) BreakerTransition(kind AccessKind, pred int, from, to BreakerState) {
	if int(to) < len(m.breakerTo) {
		m.breakerTo[to].Inc()
	}
	if to == BreakerOpen && from != BreakerOpen {
		m.breakerOpen.Add(1)
	}
	if from == BreakerOpen && to != BreakerOpen {
		m.breakerOpen.Add(-1)
	}
}

// DegradedReplan implements Observer.
func (m *Metrics) DegradedReplan(string) { m.degradedReplans.Inc() }

// AdaptiveReplan implements Observer.
func (m *Metrics) AdaptiveReplan(trigger string, divergence float64) {
	c, ok := m.replans[trigger]
	if !ok {
		c = m.otherReplan
	}
	c.Inc()
}

// ContractViolation implements Observer.
func (m *Metrics) ContractViolation(kind AccessKind, pred int, reason string) {
	c, ok := m.contract[reason]
	if !ok {
		c = m.otherViolate
	}
	c.Inc()
}

// RequestShed implements Observer.
func (m *Metrics) RequestShed() { m.shedRequests.Inc() }
