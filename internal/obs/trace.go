package obs

import (
	"sync"
	"time"
)

// PhaseSpan is one completed execution phase of a query.
type PhaseSpan struct {
	Phase   Phase   `json:"phase"`
	Seconds float64 `json:"seconds"`
}

// TraceSnapshot is the JSON form of a query's accumulated trace: the
// per-query counterpart of the ledger, extended with everything the
// engine observed while producing it. The HTTP service returns it in the
// QueryResponse when the request asks for ?trace=1.
type TraceSnapshot struct {
	// Phases lists completed execution phases in completion order.
	Phases []PhaseSpan `json:"phases,omitempty"`
	// SortedAccesses and RandomAccesses count billed accesses per
	// predicate — they must sum exactly to the session ledger's ns_i/nr_i.
	SortedAccesses []int `json:"sortedAccesses"`
	RandomAccesses []int `json:"randomAccesses"`
	// CostUnits is the total billed access cost in cost units (Eq. 1).
	CostUnits float64 `json:"costUnits"`
	// Denied counts refused or failed accesses by reason (absent when none).
	Denied map[string]int `json:"denied,omitempty"`
	// EstimatorEvals counts optimizer simulation runs; EstimatorMemoHits
	// counts configurations priced from the estimator's memo instead.
	EstimatorEvals    int `json:"estimatorEvals,omitempty"`
	EstimatorMemoHits int `json:"estimatorMemoHits,omitempty"`
	// Iterations counts framework scheduling iterations;
	// CandidatesHighWater is the largest candidate queue (K_P working set)
	// seen during the run.
	Iterations          int `json:"iterations,omitempty"`
	CandidatesHighWater int `json:"candidatesHighWater,omitempty"`
	// InflightHighWater is the peak concurrent accesses of a parallel run;
	// DispatchStalls counts rounds where free slots had nothing to launch.
	InflightHighWater int `json:"inflightHighWater,omitempty"`
	DispatchStalls    int `json:"dispatchStalls,omitempty"`
	// SourceRetries/SourceFailures count web-source request retries and
	// terminal failures; BackoffSeconds is total retry sleep time.
	SourceRetries  int     `json:"sourceRetries,omitempty"`
	SourceFailures int     `json:"sourceFailures,omitempty"`
	BackoffSeconds float64 `json:"backoffSeconds,omitempty"`
	// PlanCacheHit reports the service plan-cache outcome (nil when no
	// lookup happened, e.g. direct engine use).
	PlanCacheHit *bool `json:"planCacheHit,omitempty"`
	// PlanCacheEvictions counts plan-cache entries discarded while this
	// query ran (LRU capacity or scenario invalidation).
	PlanCacheEvictions int `json:"planCacheEvictions,omitempty"`
	// BudgetExhausted reports that at least one access was refused because
	// the session's cost budget ran dry (the anytime cutoff).
	BudgetExhausted bool `json:"budgetExhausted,omitempty"`
	// BreakerTransitions lists circuit-breaker state changes during the
	// query, in occurrence order.
	BreakerTransitions []BreakerEvent `json:"breakerTransitions,omitempty"`
	// DegradedReplans counts how often the engine re-planned around a
	// degraded scenario instead of failing the query.
	DegradedReplans int `json:"degradedReplans,omitempty"`
	// DegradedReasons are the machine-readable degradation labels the
	// engine reported while re-planning (deduplicated, in first-seen order).
	DegradedReasons []string `json:"degradedReasons,omitempty"`
	// AdaptiveReplans lists mid-query plan swaps by the divergence monitor,
	// in occurrence order, each with the trigger and the divergence score
	// that crossed the threshold.
	AdaptiveReplans []ReplanEvent `json:"adaptiveReplans,omitempty"`
	// ContractViolations lists source responses the contract guard
	// rejected during this query, in occurrence order.
	ContractViolations []ContractEvent `json:"contractViolations,omitempty"`
	// Cursor identifies the server-side cursor a traced page belongs to
	// (nil for one-shot queries). The trace itself is cumulative across the
	// cursor's pages, exactly like its ledger.
	Cursor *CursorTrace `json:"cursor,omitempty"`
}

// CursorTrace is the cursor-identity block of a traced paged response: which
// cursor produced the page, how deep pagination has gone, and whether the
// underlying execution has run dry. The service fills it in — the engine's
// QueryTrace accumulates per-query events and does not know cursor identity.
type CursorTrace struct {
	ID        string `json:"id"`
	Page      int    `json:"page"`
	Emitted   int    `json:"emitted"`
	Exhausted bool   `json:"exhausted,omitempty"`
}

// ReplanEvent is one mid-query adaptive plan swap as recorded in a trace.
type ReplanEvent struct {
	Trigger    string  `json:"trigger"`
	Divergence float64 `json:"divergence"`
}

// ContractEvent is one guard-rejected source response as recorded in a
// trace.
type ContractEvent struct {
	Kind AccessKind `json:"-"`
	// KindName is the access kind ("sorted"/"random") in JSON form.
	KindName string `json:"kind"`
	Pred     int    `json:"pred"`
	Reason   string `json:"reason"`
}

// BreakerEvent is one circuit-breaker state change as recorded in a trace.
type BreakerEvent struct {
	Kind AccessKind `json:"-"`
	// KindName is the access kind ("sorted"/"random") in JSON form.
	KindName string `json:"kind"`
	Pred     int    `json:"pred"`
	From     string `json:"from"`
	To       string `json:"to"`
}

// QueryTrace is an Observer that accumulates one query's events. It is
// safe for concurrent use (the live executor emits from its coordinating
// goroutine while web-source clients emit retries from request
// goroutines); a single short mutex guards all state.
type QueryTrace struct {
	mu sync.Mutex

	phases         []PhaseSpan
	sorted, random []int
	costUnits      float64
	denied         [numDenyReasons]int

	estimatorEvals, memoHits int
	iterations, candidatesHW int

	inflight, inflightHW int
	stalls               int

	retries, failures int
	backoff           time.Duration

	planCacheHit    bool
	planCacheLooked bool
	planEvictions   int

	breakerEvents   []BreakerEvent
	degradedReplans int
	degradedReasons []string

	replanEvents   []ReplanEvent
	contractEvents []ContractEvent
}

// NewQueryTrace returns an empty trace. Per-predicate slices grow on
// demand, so one trace works for any predicate count.
func NewQueryTrace() *QueryTrace { return &QueryTrace{} }

var _ Observer = (*QueryTrace)(nil)

func growTo(s []int, i int) []int {
	for len(s) <= i {
		s = append(s, 0)
	}
	return s
}

// AccessDone implements Observer.
func (t *QueryTrace) AccessDone(kind AccessKind, pred int, costUnits float64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if kind == Sorted {
		t.sorted = growTo(t.sorted, pred)
		t.sorted[pred]++
	} else {
		t.random = growTo(t.random, pred)
		t.random[pred]++
	}
	t.costUnits += costUnits
}

// AccessDenied implements Observer.
func (t *QueryTrace) AccessDenied(kind AccessKind, pred int, reason DenyReason) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if int(reason) < numDenyReasons {
		t.denied[reason]++
	}
	// Keep the per-predicate slices wide enough that a trace of a refused-
	// only predicate still reports it with zero billed accesses.
	t.sorted = growTo(t.sorted, pred)
	t.random = growTo(t.random, pred)
}

// PhaseDone implements Observer.
func (t *QueryTrace) PhaseDone(phase Phase, d time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.phases = append(t.phases, PhaseSpan{Phase: phase, Seconds: d.Seconds()})
}

// EstimatorEval implements Observer.
func (t *QueryTrace) EstimatorEval(memoHit bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if memoHit {
		t.memoHits++
	} else {
		t.estimatorEvals++
	}
}

// LoopIteration implements Observer.
func (t *QueryTrace) LoopIteration(candidates int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.iterations++
	if candidates > t.candidatesHW {
		t.candidatesHW = candidates
	}
}

// InflightChange implements Observer.
func (t *QueryTrace) InflightChange(delta int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.inflight += delta
	if t.inflight > t.inflightHW {
		t.inflightHW = t.inflight
	}
}

// DispatchStall implements Observer.
func (t *QueryTrace) DispatchStall() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.stalls++
}

// SourceRetry implements Observer.
func (t *QueryTrace) SourceRetry(backoff time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.retries++
	t.backoff += backoff
}

// SourceFailure implements Observer.
func (t *QueryTrace) SourceFailure() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.failures++
}

// PlanCache implements Observer.
func (t *QueryTrace) PlanCache(hit bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.planCacheLooked = true
	t.planCacheHit = hit
}

// PlanCacheEvict implements Observer.
func (t *QueryTrace) PlanCacheEvict() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.planEvictions++
}

// BreakerTransition implements Observer.
func (t *QueryTrace) BreakerTransition(kind AccessKind, pred int, from, to BreakerState) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.breakerEvents = append(t.breakerEvents, BreakerEvent{
		Kind: kind, KindName: kind.String(), Pred: pred,
		From: from.String(), To: to.String(),
	})
}

// DegradedReplan implements Observer.
func (t *QueryTrace) DegradedReplan(reason string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.degradedReplans++
	for _, r := range t.degradedReasons {
		if r == reason {
			return
		}
	}
	t.degradedReasons = append(t.degradedReasons, reason)
}

// AdaptiveReplan implements Observer.
func (t *QueryTrace) AdaptiveReplan(trigger string, divergence float64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.replanEvents = append(t.replanEvents, ReplanEvent{Trigger: trigger, Divergence: divergence})
}

// ContractViolation implements Observer.
func (t *QueryTrace) ContractViolation(kind AccessKind, pred int, reason string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.contractEvents = append(t.contractEvents, ContractEvent{
		Kind: kind, KindName: kind.String(), Pred: pred, Reason: reason,
	})
}

// RequestShed implements Observer. Shed requests never execute, so a
// per-query trace cannot observe one; the event only feeds metrics.
func (t *QueryTrace) RequestShed() {}

// Snapshot returns a consistent copy of everything accumulated so far.
func (t *QueryTrace) Snapshot() TraceSnapshot {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := TraceSnapshot{
		Phases:              append([]PhaseSpan(nil), t.phases...),
		SortedAccesses:      append([]int{}, t.sorted...),
		RandomAccesses:      append([]int{}, t.random...),
		CostUnits:           t.costUnits,
		EstimatorEvals:      t.estimatorEvals,
		EstimatorMemoHits:   t.memoHits,
		Iterations:          t.iterations,
		CandidatesHighWater: t.candidatesHW,
		InflightHighWater:   t.inflightHW,
		DispatchStalls:      t.stalls,
		SourceRetries:       t.retries,
		SourceFailures:      t.failures,
		BackoffSeconds:      t.backoff.Seconds(),
		PlanCacheEvictions:  t.planEvictions,
		BudgetExhausted:     t.denied[DenyBudget] > 0,
		BreakerTransitions:  append([]BreakerEvent(nil), t.breakerEvents...),
		DegradedReplans:     t.degradedReplans,
		DegradedReasons:     append([]string(nil), t.degradedReasons...),
		AdaptiveReplans:     append([]ReplanEvent(nil), t.replanEvents...),
		ContractViolations:  append([]ContractEvent(nil), t.contractEvents...),
	}
	for reason, n := range t.denied {
		if n > 0 {
			if s.Denied == nil {
				s.Denied = make(map[string]int)
			}
			s.Denied[DenyReason(reason).String()] = n
		}
	}
	if t.planCacheLooked {
		hit := t.planCacheHit
		s.PlanCacheHit = &hit
	}
	return s
}
