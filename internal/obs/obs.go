// Package obs is the middleware's observability layer: runtime metrics,
// per-query access traces, and a pluggable event stream.
//
// The paper's contribution is an access-cost ledger (Eq. 1); in a deployed
// middleware the same accounting must be visible while queries run, not
// only after. This package provides three pieces, all stdlib-only:
//
//   - Registry: a metrics registry of atomic counters, gauges, and
//     histograms with Prometheus text exposition (lock-free on the update
//     hot path; registration and exposition take a registry lock).
//   - Observer: the event interface the engine emits into — accesses
//     performed and refused, execution phases, optimizer estimator
//     evaluations, framework-loop progress, executor concurrency, and
//     web-source retries. Nop is the zero-allocation default; Multi fans
//     out to several observers.
//   - QueryTrace: an Observer that accumulates one query's events into a
//     JSON-serializable snapshot — the per-query analogue of the ledger,
//     returned by the HTTP service under ?trace=1.
//
// The package deliberately imports nothing from the engine so every layer
// (access, algo, opt, parallel, websim, service) can emit into it without
// cycles; access kinds and phases are mirrored here as their own types.
package obs

import "time"

// AccessKind mirrors the two access types of the paper's Section 3.2
// (access.Kind) without importing the access package.
type AccessKind uint8

const (
	// Sorted is sa_i: the next object of a predicate's descending list.
	Sorted AccessKind = iota
	// Random is ra_i(u): the exact score of one object on one predicate.
	Random
)

// String returns "sorted" or "random".
func (k AccessKind) String() string {
	if k == Sorted {
		return "sorted"
	}
	return "random"
}

// DenyReason classifies why a session refused (or failed) an access
// without billing it.
type DenyReason uint8

const (
	// DenyUnsupported: the scenario forbids this access kind on the predicate.
	DenyUnsupported DenyReason = iota
	// DenyExhausted: the sorted list is fully consumed.
	DenyExhausted
	// DenyWildGuess: random access to an unseen object under no-wild-guesses.
	DenyWildGuess
	// DenyRepeatedProbe: a second random access to the same (pred, obj).
	DenyRepeatedProbe
	// DenyBudget: the access would exceed the session's cost budget.
	DenyBudget
	// DenyCancelled: the run's context was cancelled or timed out.
	DenyCancelled
	// DenyBackend: the backend failed the access (transport or source error).
	DenyBackend
	// DenyBreaker: the capability's circuit breaker is open after repeated
	// source failures; the access was refused without touching the source.
	DenyBreaker
	// DenyContract: the contract guard rejected the source's response
	// (sorted-order violation, NaN score, duplicate id, or a random result
	// inconsistent with an earlier sorted sighting); the corrupt value was
	// discarded before it could reach the threshold math.
	DenyContract

	numDenyReasons = int(DenyContract) + 1
)

// String returns the reason's label as exposed in metrics and traces.
func (d DenyReason) String() string {
	switch d {
	case DenyUnsupported:
		return "unsupported"
	case DenyExhausted:
		return "exhausted"
	case DenyWildGuess:
		return "wild_guess"
	case DenyRepeatedProbe:
		return "repeated_probe"
	case DenyBudget:
		return "budget"
	case DenyCancelled:
		return "cancelled"
	case DenyBackend:
		return "backend"
	case DenyBreaker:
		return "breaker"
	case DenyContract:
		return "contract"
	default:
		return "unknown"
	}
}

// DenyReasons lists every reason, for observers that pre-register one
// metric per label value.
func DenyReasons() []DenyReason {
	return []DenyReason{
		DenyUnsupported, DenyExhausted, DenyWildGuess,
		DenyRepeatedProbe, DenyBudget, DenyCancelled, DenyBackend,
		DenyBreaker, DenyContract,
	}
}

// BreakerState mirrors the circuit-breaker states of the access layer's
// resilience machinery (access.BreakerState) without importing it.
type BreakerState uint8

const (
	// BreakerClosed: the capability is healthy; accesses flow through.
	BreakerClosed BreakerState = iota
	// BreakerOpen: consecutive failures tripped the circuit; the capability
	// is flipped off in the session's current scenario.
	BreakerOpen
	// BreakerHalfOpen: the cooldown elapsed; one probe access is let
	// through to decide between closing and re-opening.
	BreakerHalfOpen
)

// String returns "closed", "open", or "half_open" as exposed in metrics.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half_open"
	default:
		return "unknown"
	}
}

// Phase names one stage of a query execution.
type Phase string

const (
	// PhaseParse covers SQL parsing and column binding (service layer).
	PhaseParse Phase = "parse"
	// PhasePlan covers dataset projection, engine construction, and the
	// plan-cache lookup (service layer).
	PhasePlan Phase = "plan"
	// PhaseOptimize covers the cost-based SR/G configuration search.
	PhaseOptimize Phase = "optimize"
	// PhaseExecute covers the framework run itself.
	PhaseExecute Phase = "execute"
)

// Observer receives engine execution events. Implementations used with the
// concurrent executors (parallel.Executor, parallel.Live) or shared across
// HTTP requests must be safe for concurrent use; Nop, Registry-backed
// observers, and QueryTrace all are.
//
// Every method must be cheap and non-blocking: events fire on the access
// hot path, and a stalled observer stalls the query.
type Observer interface {
	// AccessDone fires after each performed (billed) access.
	AccessDone(kind AccessKind, pred int, costUnits float64)
	// AccessDenied fires when an access is refused or fails; nothing was
	// billed for it.
	AccessDenied(kind AccessKind, pred int, reason DenyReason)
	// PhaseDone records a completed execution phase.
	PhaseDone(phase Phase, d time.Duration)
	// EstimatorEval fires per optimizer cost estimate; memoHit reports
	// whether the configuration was already priced (no simulation run).
	EstimatorEval(memoHit bool)
	// LoopIteration fires once per framework scheduling iteration with the
	// current candidate-queue size (the K_P working set).
	LoopIteration(candidates int)
	// InflightChange reports a concurrent executor starting (+1) or
	// finishing (-1) an access.
	InflightChange(delta int)
	// DispatchStall fires when a concurrent executor has free slots but no
	// dispatchable necessary access (it must wait for completions).
	DispatchStall()
	// SourceRetry fires before a web-source client backs off to retry a
	// failed request.
	SourceRetry(backoff time.Duration)
	// SourceFailure fires when a web-source request fails for good
	// (retries exhausted or non-retryable).
	SourceFailure()
	// PlanCache reports a plan-cache lookup outcome.
	PlanCache(hit bool)
	// PlanCacheEvict fires when the plan cache discards an entry, either
	// to make room (LRU capacity) or because its scenario fingerprint was
	// invalidated.
	PlanCacheEvict()
	// BreakerTransition fires when a capability's circuit breaker changes
	// state (open on consecutive failures, half-open after the cooldown,
	// closed on a successful probe).
	BreakerTransition(kind AccessKind, pred int, from, to BreakerState)
	// DegradedReplan fires when the engine re-plans around a degraded
	// scenario instead of failing: a faulted or breaker-refused access was
	// absorbed and the framework re-derived its choices. The reason is a
	// machine-readable label ("circuit_open", "source_failure", ...).
	DegradedReplan(reason string)
	// AdaptiveReplan fires when the divergence monitor swaps the plan
	// mid-query: the observed source behavior drifted past the checkpoint
	// threshold (trigger "divergence"), far enough to distrust the
	// estimator's sample entirely ("stale_sample"), or the cost scenario
	// itself changed ("scenario_change"). The divergence score that
	// triggered the swap rides along (ReplanTriggers lists the labels).
	AdaptiveReplan(trigger string, divergence float64)
	// ContractViolation fires when the contract guard rejects a source
	// response before it can corrupt the threshold math; reason is one of
	// ViolationReasons ("unsorted", "nan", "range", "dup", "inconsistent").
	ContractViolation(kind AccessKind, pred int, reason string)
	// RequestShed fires when the service refuses a query at admission
	// because the inflight cap is reached (load shedding).
	RequestShed()
}

// ReplanTriggers lists every AdaptiveReplan label, for observers that
// pre-register one metric per label value.
func ReplanTriggers() []string {
	return []string{"divergence", "stale_sample", "scenario_change"}
}

// ViolationReasons lists every ContractViolation label, for observers
// that pre-register one metric per label value.
func ViolationReasons() []string {
	return []string{"unsorted", "nan", "range", "dup", "inconsistent"}
}

// Nop is the zero-allocation no-op Observer: every method returns
// immediately. It is the default wherever an Observer is optional.
type Nop struct{}

// AccessDone implements Observer.
func (Nop) AccessDone(AccessKind, int, float64) {}

// AccessDenied implements Observer.
func (Nop) AccessDenied(AccessKind, int, DenyReason) {}

// PhaseDone implements Observer.
func (Nop) PhaseDone(Phase, time.Duration) {}

// EstimatorEval implements Observer.
func (Nop) EstimatorEval(bool) {}

// LoopIteration implements Observer.
func (Nop) LoopIteration(int) {}

// InflightChange implements Observer.
func (Nop) InflightChange(int) {}

// DispatchStall implements Observer.
func (Nop) DispatchStall() {}

// SourceRetry implements Observer.
func (Nop) SourceRetry(time.Duration) {}

// SourceFailure implements Observer.
func (Nop) SourceFailure() {}

// PlanCache implements Observer.
func (Nop) PlanCache(bool) {}

// PlanCacheEvict implements Observer.
func (Nop) PlanCacheEvict() {}

// BreakerTransition implements Observer.
func (Nop) BreakerTransition(AccessKind, int, BreakerState, BreakerState) {}

// DegradedReplan implements Observer.
func (Nop) DegradedReplan(string) {}

// AdaptiveReplan implements Observer.
func (Nop) AdaptiveReplan(string, float64) {}

// ContractViolation implements Observer.
func (Nop) ContractViolation(AccessKind, int, string) {}

// RequestShed implements Observer.
func (Nop) RequestShed() {}

var _ Observer = Nop{}

// multi fans every event out to each member in order.
type multi []Observer

func (m multi) AccessDone(k AccessKind, p int, c float64) {
	for _, o := range m {
		o.AccessDone(k, p, c)
	}
}
func (m multi) AccessDenied(k AccessKind, p int, r DenyReason) {
	for _, o := range m {
		o.AccessDenied(k, p, r)
	}
}
func (m multi) PhaseDone(ph Phase, d time.Duration) {
	for _, o := range m {
		o.PhaseDone(ph, d)
	}
}
func (m multi) EstimatorEval(hit bool) {
	for _, o := range m {
		o.EstimatorEval(hit)
	}
}
func (m multi) LoopIteration(n int) {
	for _, o := range m {
		o.LoopIteration(n)
	}
}
func (m multi) InflightChange(d int) {
	for _, o := range m {
		o.InflightChange(d)
	}
}
func (m multi) DispatchStall() {
	for _, o := range m {
		o.DispatchStall()
	}
}
func (m multi) SourceRetry(b time.Duration) {
	for _, o := range m {
		o.SourceRetry(b)
	}
}
func (m multi) SourceFailure() {
	for _, o := range m {
		o.SourceFailure()
	}
}
func (m multi) PlanCache(hit bool) {
	for _, o := range m {
		o.PlanCache(hit)
	}
}
func (m multi) PlanCacheEvict() {
	for _, o := range m {
		o.PlanCacheEvict()
	}
}
func (m multi) BreakerTransition(k AccessKind, p int, from, to BreakerState) {
	for _, o := range m {
		o.BreakerTransition(k, p, from, to)
	}
}
func (m multi) DegradedReplan(reason string) {
	for _, o := range m {
		o.DegradedReplan(reason)
	}
}
func (m multi) AdaptiveReplan(trigger string, divergence float64) {
	for _, o := range m {
		o.AdaptiveReplan(trigger, divergence)
	}
}
func (m multi) ContractViolation(k AccessKind, p int, reason string) {
	for _, o := range m {
		o.ContractViolation(k, p, reason)
	}
}
func (m multi) RequestShed() {
	for _, o := range m {
		o.RequestShed()
	}
}

// Multi combines observers into one that fans events out in argument
// order. Nil members are dropped; zero live members yield Nop.
func Multi(obs ...Observer) Observer {
	live := make(multi, 0, len(obs))
	for _, o := range obs {
		if o != nil {
			live = append(live, o)
		}
	}
	switch len(live) {
	case 0:
		return Nop{}
	case 1:
		return live[0]
	default:
		return live
	}
}
