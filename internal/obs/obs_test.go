package obs

import (
	"testing"
	"time"
)

func TestDenyReasonStrings(t *testing.T) {
	seen := make(map[string]bool)
	for _, r := range DenyReasons() {
		s := r.String()
		if s == "" || seen[s] {
			t.Errorf("reason %d has empty or duplicate name %q", r, s)
		}
		seen[s] = true
	}
	if len(seen) != numDenyReasons {
		t.Errorf("DenyReasons lists %d reasons, want %d", len(seen), numDenyReasons)
	}
}

// TestNopZeroAlloc pins the zero-overhead contract of the default path:
// delivering events to the no-op observer allocates nothing.
func TestNopZeroAlloc(t *testing.T) {
	var o Observer = Nop{}
	if avg := testing.AllocsPerRun(100, func() {
		o.AccessDone(Sorted, 0, 1)
		o.AccessDenied(Random, 1, DenyBudget)
		o.PhaseDone(PhaseExecute, time.Millisecond)
		o.EstimatorEval(true)
		o.LoopIteration(3)
		o.InflightChange(1)
		o.DispatchStall()
		o.SourceRetry(time.Millisecond)
		o.SourceFailure()
		o.PlanCache(false)
		o.BreakerTransition(Sorted, 0, BreakerClosed, BreakerOpen)
		o.DegradedReplan("circuit_open")
		o.RequestShed()
	}); avg != 0 {
		t.Errorf("Nop allocates %.1f per event batch, want 0", avg)
	}
}

func TestMulti(t *testing.T) {
	if _, ok := Multi().(Nop); !ok {
		t.Error("Multi() must collapse to Nop")
	}
	a, b := NewQueryTrace(), NewQueryTrace()
	if Multi(nil, a, nil) != Observer(a) {
		t.Error("Multi with one non-nil observer must return it directly")
	}
	m := Multi(a, b)
	m.AccessDone(Sorted, 0, 2)
	m.LoopIteration(4)
	for i, tr := range []*QueryTrace{a, b} {
		s := tr.Snapshot()
		if s.CostUnits != 2 || s.Iterations != 1 || s.CandidatesHighWater != 4 {
			t.Errorf("observer %d missed fanned-out events: %+v", i, s)
		}
	}
}

func TestQueryTraceSnapshot(t *testing.T) {
	tr := NewQueryTrace()
	tr.PhaseDone(PhaseParse, 2*time.Millisecond)
	tr.AccessDone(Sorted, 0, 1)
	tr.AccessDone(Sorted, 2, 1) // pred 2 forces slice growth past pred 1
	tr.AccessDone(Random, 1, 10)
	tr.AccessDenied(Random, 0, DenyBudget)
	tr.AccessDenied(Sorted, 0, DenyExhausted)
	tr.EstimatorEval(false)
	tr.EstimatorEval(true)
	tr.InflightChange(+3)
	tr.InflightChange(-1)
	tr.InflightChange(+1)
	tr.DispatchStall()
	tr.SourceRetry(50 * time.Millisecond)
	tr.SourceFailure()
	tr.PlanCache(false)

	s := tr.Snapshot()
	if len(s.Phases) != 1 || s.Phases[0].Phase != PhaseParse {
		t.Errorf("phases = %+v", s.Phases)
	}
	at := func(s []int, i int) int {
		if i < len(s) {
			return s[i]
		}
		return 0 // per-predicate slices grow lazily; missing tail means zero
	}
	wantSorted, wantRandom := []int{1, 0, 1}, []int{0, 1, 0}
	for i := range wantSorted {
		if at(s.SortedAccesses, i) != wantSorted[i] || at(s.RandomAccesses, i) != wantRandom[i] {
			t.Fatalf("access counts = %v/%v, want %v/%v",
				s.SortedAccesses, s.RandomAccesses, wantSorted, wantRandom)
		}
	}
	if s.CostUnits != 12 {
		t.Errorf("cost = %g, want 12", s.CostUnits)
	}
	if s.Denied["budget"] != 1 || s.Denied["exhausted"] != 1 {
		t.Errorf("denied = %v", s.Denied)
	}
	if !s.BudgetExhausted {
		t.Error("budget denial must set BudgetExhausted")
	}
	if s.EstimatorEvals != 1 || s.EstimatorMemoHits != 1 {
		t.Errorf("estimator counts = %d/%d", s.EstimatorEvals, s.EstimatorMemoHits)
	}
	if s.InflightHighWater != 3 || s.DispatchStalls != 1 {
		t.Errorf("inflight HW = %d, stalls = %d", s.InflightHighWater, s.DispatchStalls)
	}
	if s.SourceRetries != 1 || s.SourceFailures != 1 || s.BackoffSeconds != 0.05 {
		t.Errorf("source stats = %+v", s)
	}
	if s.PlanCacheHit == nil || *s.PlanCacheHit {
		t.Errorf("plan cache = %v, want miss recorded", s.PlanCacheHit)
	}

	// Snapshots are copies: later events must not mutate an earlier one.
	tr.AccessDone(Sorted, 0, 1)
	if s.SortedAccesses[0] != 1 {
		t.Error("snapshot aliases live trace state")
	}
	if tr.Snapshot().PlanCacheHit == s.PlanCacheHit {
		t.Error("snapshots share the PlanCacheHit pointer")
	}
}
