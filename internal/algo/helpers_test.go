package algo

// MustNewSRG is a test-only NewSRG that panics on error; production code
// handles the error.
func MustNewSRG(h []float64, omega []int) *SRG {
	s, err := NewSRG(h, omega)
	if err != nil {
		panic(err)
	}
	return s
}
