package algo

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/access"
	"repro/internal/data"
	"repro/internal/data/datatest"
	"repro/internal/score"
	"repro/internal/state"
)

// TestRandomizedAgreementProperty drives every applicable algorithm over
// randomized datasets, scoring functions, retrieval sizes, and capability
// configurations, and checks that all of them agree with the brute-force
// oracle (up to tie permutations). This is the repository's central
// property test: a scheduling bug in any algorithm, or a bound bug in the
// shared state layer, fails here.
func TestRandomizedAgreementProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	funcs := []score.Func{score.Min(), score.Avg(), score.Max(), score.Product(), score.Geometric(), score.Median(), score.OrderStatistic(2)}
	dists := []data.Distribution{data.Uniform, data.Gaussian, data.Skewed, data.Correlated, data.AntiCorrelated}

	prop := func(seed int64, fIdx, dIdx, kRaw, mRaw, scnIdx uint8) bool {
		m := int(mRaw%3) + 2 // 2..4
		n := 40
		k := int(kRaw%12) + 1
		f := funcs[int(fIdx)%len(funcs)]
		ds := datatest.MustGenerate(dists[int(dIdx)%len(dists)], n, m, seed)

		type setup struct {
			scn  access.Scenario
			algs []Algorithm
		}
		h := make([]float64, m)
		for i := range h {
			h[i] = float64(int(seed)%7) / 7 // deterministic per-case depth
			if h[i] < 0 {
				h[i] = -h[i]
			}
		}
		nc, err := NewNC(h, nil)
		if err != nil {
			t.Fatal(err)
		}
		setups := []setup{
			{access.Uniform(m, 1, 1), []Algorithm{nc, TA{}, FA{}, CA{}}},
			{access.MatrixCell(m, access.Cheap, access.Impossible, 10), []Algorithm{nc, NRA{}}},
			{access.MatrixCell(m, access.Impossible, access.Expensive, 10), []Algorithm{nc, MPro{}, Upper{}}},
			{access.MatrixCell(m, access.Expensive, access.Cheap, 10), []Algorithm{nc}},
		}
		s := setups[int(scnIdx)%len(setups)]

		oracle := ds.TopK(f.Eval, k)
		want := make([]float64, len(oracle))
		for i, r := range oracle {
			want[i] = r.Score
		}
		sort.Float64s(want)

		for _, alg := range s.algs {
			sess, err := access.NewSession(access.DatasetBackend{DS: ds}, s.scn)
			if err != nil {
				t.Fatal(err)
			}
			prob, err := NewProblem(f, k, sess)
			if err != nil {
				t.Fatal(err)
			}
			res, err := alg.Run(prob)
			if err != nil {
				t.Logf("%s on %s: %v", alg.Name(), s.scn.Name, err)
				return false
			}
			if len(res.Items) != len(oracle) {
				t.Logf("%s: %d items, oracle %d", alg.Name(), len(res.Items), len(oracle))
				return false
			}
			got := make([]float64, len(res.Items))
			seen := make(map[int]bool)
			for i, it := range res.Items {
				if seen[it.Obj] {
					t.Logf("%s: duplicate object %d", alg.Name(), it.Obj)
					return false
				}
				seen[it.Obj] = true
				got[i] = f.Eval(ds.Scores(it.Obj))
			}
			sort.Float64s(got)
			for i := range got {
				if math.Abs(got[i]-want[i]) > 1e-9 {
					t.Logf("%s seed=%d f=%s k=%d scn=%s: score multiset mismatch", alg.Name(), seed, f.Name(), k, s.scn.Name)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120, Rand: rng}); err != nil {
		t.Error(err)
	}
}

// TestNCTraceSatisfiesTheorem1 replays NC's own traces and verifies that
// at halt the gathered information satisfies Theorem 1's condition — the
// framework never stops early and never relies on information it did not
// pay for.
func TestNCTraceSatisfiesTheorem1(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		ds := datatest.MustGenerate(data.Uniform, 50, 2, seed)
		for _, f := range []score.Func{score.Min(), score.Avg()} {
			for _, h := range [][]float64{{0, 1}, {0.5, 0.5}, {1, 1}} {
				k := int(seed%6) + 1
				alg, err := NewNC(h, nil)
				if err != nil {
					t.Fatal(err)
				}
				_, sess := mustRun(t, alg, ds, access.Uniform(2, 1, 1), f, k, access.WithTrace())
				tab, err := ReplayTrace(ds, f, sess.Trace(), true)
				if err != nil {
					t.Fatalf("seed %d: NC produced an illegal trace: %v", seed, err)
				}
				if _, ok := Sufficient(tab, k); !ok {
					t.Fatalf("seed %d f=%s H=%v k=%d: NC halted without sufficient information", seed, f.Name(), h, k)
				}
			}
		}
	}
}

// TestNCNeverRepeatsOrWastesAccesses inspects NC traces for scheduling
// hygiene: no access may appear twice (sorted accesses are distinct ranks
// by construction; probes are distinct (pred, obj) pairs), and every probe
// must target an object that was in the candidate top-k at probe time —
// approximated here as "was seen before being probed" plus session
// legality, which the session enforces by erroring out.
func TestNCNeverRepeatsOrWastesAccesses(t *testing.T) {
	ds := datatest.MustGenerate(data.Gaussian, 80, 3, 5)
	alg, err := NewNC([]float64{0.4, 0.6, 0.8}, []int{2, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	_, sess := mustRun(t, alg, ds, access.Uniform(3, 1, 2), score.Avg(), 8, access.WithTrace())
	probes := make(map[[2]int]bool)
	seen := make(map[int]bool)
	for _, rec := range sess.Trace() {
		switch rec.Kind {
		case access.SortedAccess:
			seen[rec.Obj] = true
		case access.RandomAccess:
			key := [2]int{rec.Pred, rec.Obj}
			if probes[key] {
				t.Fatalf("repeated probe %v", rec)
			}
			probes[key] = true
			if !seen[rec.Obj] {
				t.Fatalf("probe of unseen object %v", rec)
			}
		}
	}
}

// TestNecessaryChoicesDefinition2 checks the constructed choice sets
// against Definition 2 on the paper's worked Example 8: after
// P = {sa1, sa1, sa2, ra1(u1)}, the unsatisfied task of u3 (paper
// numbering; OID 2 here is complete, so we check u2 = OID 1, whose p2 is
// undetermined) admits exactly sa2 and ra2.
func TestNecessaryChoicesDefinition2(t *testing.T) {
	ds := fig3()
	// Example 7's trace probes a still-unseen object, so it runs without
	// the no-wild-guesses rule (the framework "can generally work with or
	// without", Section 8).
	sess, err := access.NewSession(access.DatasetBackend{DS: ds}, access.Uniform(2, 1, 1), access.WithoutNoWildGuesses())
	if err != nil {
		t.Fatal(err)
	}
	tab, err := state.NewTable(3, 2, score.Min())
	if err != nil {
		t.Fatal(err)
	}
	feed := func(kind access.Kind, pred, obj int) {
		if kind == access.SortedAccess {
			gotObj, s, err := sess.SortedNext(pred)
			if err != nil || gotObj != obj {
				t.Fatalf("setup: sa%d -> u%d (%v), want u%d", pred+1, gotObj, err, obj)
			}
			tab.ObserveSorted(pred, gotObj, s)
			return
		}
		s, err := sess.Random(pred, obj)
		if err != nil {
			t.Fatalf("setup: %v", err)
		}
		tab.ObserveRandom(pred, obj, s)
	}
	feed(access.SortedAccess, 0, 2) // u3(.7)
	feed(access.SortedAccess, 0, 1) // u2(.65)
	feed(access.SortedAccess, 1, 2) // u3(.9)
	feed(access.RandomAccess, 0, 0) // ra1(u1)=.6

	// OID 1 (paper's u2): p1 known, p2 undetermined -> {sa2, ra2(u2)}.
	choices := NecessaryChoices(tab, sess, 1)
	if len(choices) != 2 {
		t.Fatalf("choices = %v", choices)
	}
	wantKinds := map[access.Kind]bool{}
	for _, ch := range choices {
		if ch.Pred != 1 {
			t.Fatalf("choice on wrong predicate: %v", ch)
		}
		wantKinds[ch.Kind] = true
	}
	if !wantKinds[access.SortedAccess] || !wantKinds[access.RandomAccess] {
		t.Fatalf("choices = %v, want one sa and one ra on p2", choices)
	}
	// OID 2 (paper's u3) is complete: no choices.
	if got := NecessaryChoices(tab, sess, 2); len(got) != 0 {
		t.Fatalf("complete object has choices: %v", got)
	}
	// The virtual unseen object: sorted accesses on both lists.
	got := NecessaryChoices(tab, sess, state.UnseenID)
	if len(got) != 2 || got[0].Kind != access.SortedAccess || got[1].Kind != access.SortedAccess {
		t.Fatalf("unseen choices = %v", got)
	}
	// Probed predicates are excluded: OID 0's p1 was probed; p2 remains.
	got = NecessaryChoices(tab, sess, 0)
	for _, ch := range got {
		if ch.Pred == 0 && ch.Kind == access.RandomAccess {
			t.Fatalf("probed predicate offered again: %v", got)
		}
	}
}
