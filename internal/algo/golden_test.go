package algo

import (
	"strings"
	"testing"

	"repro/internal/access"
	"repro/internal/data"
	"repro/internal/data/datatest"
	"repro/internal/score"
)

// Golden traces of the classic algorithms on the paper's Dataset 1
// (Figure 3), top-1 under min. These pin the exact access schedules so a
// behavioural regression in any baseline is caught as a readable diff
// against the paper's worked dataset (recall OIDs: paper u1,u2,u3 are
// 0,1,2 here).
func TestGoldenTracesOnPaperDataset(t *testing.T) {
	cases := []struct {
		alg  Algorithm
		scn  access.Scenario
		want []string
	}{
		{
			// TA, round 1: sa1 hits u3(.7), exhaustively probes its p2;
			// sa2 hits u3 again (already processed). Threshold after
			// round 1 = min(.7,.9) = .7 <= best .7 -> stop.
			alg: TA{},
			scn: access.Uniform(2, 1, 1),
			want: []string{
				"sa1->u2(0.70)", "ra2(u2)=0.90", "sa2->u2(0.90)",
			},
		},
		{
			// FA phase 1 runs until one object is seen in both lists: u3
			// after round 1. Phase 2 has nothing to probe (u3 complete).
			alg: FA{},
			scn: access.Uniform(2, 1, 1),
			want: []string{
				"sa1->u2(0.70)", "sa2->u2(0.90)",
			},
		},
		{
			// NRA keeps doing equal-depth sorted rounds until u3's lower
			// bound min(.7,.9)=.7 dominates everything else's upper; after
			// round 1, u1/u2 are bounded by min(.65?, ...) -- one more
			// round settles it.
			alg: NRA{},
			scn: access.MatrixCell(2, access.Cheap, access.Impossible, 10),
			want: []string{
				"sa1->u2(0.70)", "sa2->u2(0.90)",
			},
		},
		{
			// MPro: drain the retrieval list (p1) while the unseen object
			// leads, then probe the leader's p2 by the global schedule.
			alg: MPro{},
			scn: access.MatrixCell(2, access.Impossible, access.Cheap, 10),
			want: []string{
				"sa1->u2(0.70)", "ra2(u2)=0.90",
			},
		},
	}
	for _, c := range cases {
		res, sess := mustRun(t, c.alg, fig3(), c.scn, score.Min(), 1, access.WithTrace())
		if len(res.Items) != 1 || res.Items[0].Obj != 2 {
			t.Fatalf("%s: wrong answer %+v", c.alg.Name(), res.Items)
		}
		var got []string
		for _, rec := range sess.Trace() {
			got = append(got, rec.String())
		}
		if strings.Join(got, " ") != strings.Join(c.want, " ") {
			t.Errorf("%s trace:\n got  %v\n want %v", c.alg.Name(), got, c.want)
		}
	}
}

// TestSoakLargeDatabase is a guarded larger-scale run: n = 10000 objects,
// three predicates, several algorithms against the oracle. It keeps the
// asymptotics honest (lazy queue revalidation, partial selections) beyond
// the small sizes unit tests use.
func TestSoakLargeDatabase(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	ds := datatest.MustGenerate(data.Gaussian, 10000, 3, 123)
	f := score.Avg()
	k := 25
	algs := []struct {
		alg Algorithm
		scn access.Scenario
	}{
		{MustNCForTest(3), access.Uniform(3, 1, 5)},
		{TA{}, access.Uniform(3, 1, 5)},
		{NRA{}, access.MatrixCell(3, access.Cheap, access.Impossible, 10)},
		{CA{}, access.MatrixCell(3, access.Cheap, access.Expensive, 10)},
	}
	for _, c := range algs {
		res, _ := mustRun(t, c.alg, ds, c.scn, f, k)
		assertTopK(t, c.alg.Name()+"/soak", ds, f, k, res)
	}
}
