package algo

import (
	"errors"
	"io"
	"math"
	"testing"

	"repro/internal/access"
	"repro/internal/data"
	"repro/internal/data/datatest"
	"repro/internal/score"
)

func newStream(t *testing.T, ds *data.Dataset, scn access.Scenario, f score.Func, eps float64, opts ...access.Option) *Stream {
	t.Helper()
	sess := mustSession(t, ds, scn, opts...)
	prob, err := NewProblem(f, 1, sess)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewStream(prob, MustNewSRG(midDepths(ds.M()), nil), eps)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func midDepths(m int) []float64 {
	h := make([]float64, m)
	for i := range h {
		h[i] = 0.5
	}
	return h
}

func TestStreamMatchesFullRanking(t *testing.T) {
	ds := datatest.MustGenerate(data.Uniform, 60, 2, 71)
	f := score.Avg()
	s := newStream(t, ds, access.Uniform(2, 1, 1), f, 0)
	oracle := ds.TopK(f.Eval, ds.N())
	for i, want := range oracle {
		it, err := s.Next()
		if err != nil {
			t.Fatalf("rank %d: %v", i, err)
		}
		if math.Abs(it.Score-want.Score) > 1e-9 {
			t.Fatalf("rank %d: got %g want %g", i, it.Score, want.Score)
		}
		if !it.Exact {
			t.Fatalf("rank %d not exact", i)
		}
	}
	if _, err := s.Next(); !errors.Is(err, io.EOF) {
		t.Errorf("drained stream should EOF, got %v", err)
	}
	// EOF is sticky.
	if _, err := s.Next(); !errors.Is(err, io.EOF) {
		t.Errorf("EOF should be sticky, got %v", err)
	}
}

func TestStreamIncrementalCostsNoMoreThanOneShot(t *testing.T) {
	ds := datatest.MustGenerate(data.Gaussian, 300, 2, 72)
	f := score.Min()
	scn := access.Uniform(2, 1, 3)

	// One-shot top-10 via NC.Run.
	alg, _ := NewNC(midDepths(2), nil)
	oneShot, _ := mustRun(t, alg, ds, scn, f, 10)

	// Streamed: 5 now, 5 later — same answers, same total cost (state is
	// reused, nothing re-paid).
	s := newStream(t, ds, scn, f, 0)
	first, err := s.Drain(5)
	if err != nil {
		t.Fatal(err)
	}
	costAfter5 := s.Cost()
	second, err := s.Drain(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(first)+len(second) != 10 {
		t.Fatalf("drained %d+%d items", len(first), len(second))
	}
	for i, it := range append(first, second...) {
		if it.Obj != oneShot.Items[i].Obj {
			t.Fatalf("rank %d: stream %d vs one-shot %d", i, it.Obj, oneShot.Items[i].Obj)
		}
	}
	if s.Cost() != oneShot.Cost() {
		t.Errorf("streamed total %v != one-shot %v", s.Cost(), oneShot.Cost())
	}
	if costAfter5 >= s.Cost() {
		t.Errorf("the second batch should have cost something: %v then %v", costAfter5, s.Cost())
	}
	if s.Ledger().TotalAccesses() == 0 {
		t.Error("ledger empty")
	}
}

func TestStreamApproximate(t *testing.T) {
	ds := datatest.MustGenerate(data.Uniform, 300, 3, 73)
	scn := access.MatrixCell(3, access.Cheap, access.Impossible, 10)
	exact := newStream(t, ds, scn, score.Avg(), 0)
	if _, err := exact.Drain(10); err != nil {
		t.Fatal(err)
	}
	approx := newStream(t, ds, scn, score.Avg(), 0.5)
	items, err := approx.Drain(10)
	if err != nil {
		t.Fatal(err)
	}
	if approx.Cost() > exact.Cost() {
		t.Errorf("approximate stream cost %v exceeds exact %v", approx.Cost(), exact.Cost())
	}
	for _, it := range items {
		truth := score.Avg().Eval(ds.Scores(it.Obj))
		if it.Score > truth+1e-9 {
			t.Fatalf("reported %g overstates truth %g", it.Score, truth)
		}
	}
}

func TestStreamBudgetSurfaces(t *testing.T) {
	ds := datatest.MustGenerate(data.Uniform, 200, 2, 74)
	s := newStream(t, ds, access.Uniform(2, 1, 1), score.Avg(), 0, access.WithBudget(10*access.UnitCost))
	_, err := s.Drain(50)
	if !errors.Is(err, access.ErrBudgetExhausted) {
		t.Fatalf("err = %v, want budget exhaustion", err)
	}
	if s.Cost() > 10*access.UnitCost {
		t.Errorf("overspent: %v", s.Cost())
	}
}

func TestStreamValidation(t *testing.T) {
	ds := datatest.MustGenerate(data.Uniform, 10, 2, 1)
	sess := mustSession(t, ds, access.Uniform(2, 1, 1))
	prob, _ := NewProblem(score.Avg(), 1, sess)
	if _, err := NewStream(prob, nil, 0); err == nil {
		t.Error("nil selector should fail")
	}
	if _, err := NewStream(prob, MustNewSRG(midDepths(2), nil), -1); err == nil {
		t.Error("negative epsilon should fail")
	}
	if _, err := NewStream(prob, MustNewSRG(midDepths(2), nil), 0); err != nil {
		t.Fatalf("valid stream rejected: %v", err)
	}
	// The problem is consumed by the stream.
	if _, err := (TA{}).Run(prob); err == nil {
		t.Error("consumed problem should refuse other algorithms")
	}
}
