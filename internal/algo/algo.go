// Package algo implements the paper's Framework NC — the general yet
// specific space of top-k middleware algorithms built on necessary choices
// (Sections 5–6) — together with its SR/G instantiation (Section 7.1) and
// the existing algorithms the framework unifies (Section 8): FA, TA, CA,
// NRA, MPro, Upper, Quick-Combine, and Stream-Combine.
//
// Every algorithm consumes a Problem: a scoring function, a retrieval size
// k, and an access.Session through which all score information must be
// gathered (and paid for). Algorithms differ only in how they schedule
// accesses; the session enforces legality and meters cost uniformly, so
// ledgers are directly comparable across algorithms — the paper's basis
// for cost-based optimization.
package algo

import (
	"fmt"
	"sort"

	"repro/internal/access"
	"repro/internal/data"
	"repro/internal/score"
)

// Problem is one top-k query execution context. A Problem (and its
// session) is single-use: run exactly one algorithm on it — a session
// carries consumed cursors and probe history, so a second run would see
// corrupted state. Algorithms enforce this via begin().
type Problem struct {
	F       score.Func
	K       int
	Session *access.Session

	started bool
}

// Begin marks the problem consumed. Every algorithm implementation
// (including external executors) calls it exactly once before touching
// the session; a second call fails.
func (p *Problem) Begin() error {
	if p.started {
		return fmt.Errorf("algo: problem already executed; sessions are single-use — build a new Problem per run")
	}
	p.started = true
	return nil
}

// NewProblem validates and bundles a query with its session.
func NewProblem(f score.Func, k int, sess *access.Session) (*Problem, error) {
	if k <= 0 {
		return nil, fmt.Errorf("algo: retrieval size k must be positive, got %d", k)
	}
	if err := score.Validate(f, sess.M()); err != nil {
		return nil, err
	}
	return &Problem{F: f, K: k, Session: sess}, nil
}

// Item is one returned answer. Exact reports whether Score is the true
// overall score (algorithms like NRA terminate knowing the top-k identity
// but only a score interval; Score is then the final lower bound).
type Item struct {
	Obj   int
	Score float64
	Exact bool
}

// Result is a completed top-k execution: the ranked answers and the
// session ledger at halt (the paper's cost, Eq. 1).
type Result struct {
	Items  []Item
	Ledger access.Ledger
	// Truncated is set when a cost budget ran out — or, under a fault-
	// tolerant session, when degradation left no way to prove the answer —
	// before the answer was proven: Items then holds the best current
	// candidates (guaranteed answers first, then candidates ordered by
	// maximal-possible score, carrying lower-bound scores with Exact=false).
	Truncated bool
	// Degraded lists machine-readable reasons the answer is best-effort
	// rather than exact ("circuit_open:sa:p1", "query_deadline", ...).
	// Empty for exact answers and plain budget truncation.
	Degraded []string
}

// Cost returns the total access cost of the run.
func (r *Result) Cost() access.Cost { return r.Ledger.TotalCost }

// Objects returns the answer ids in rank order.
func (r *Result) Objects() []int {
	out := make([]int, len(r.Items))
	for i, it := range r.Items {
		out[i] = it.Obj
	}
	return out
}

// Algorithm is a middleware query plan generator: given a problem it
// schedules accesses until the top-k is determined.
type Algorithm interface {
	Name() string
	Run(p *Problem) (*Result, error)
}

// rankItems sorts items by the deterministic total order (score descending,
// higher OID first on ties) and truncates to k.
func rankItems(items []Item, k int) []Item {
	sort.Slice(items, func(a, b int) bool {
		return data.Less(items[b].Score, items[b].Obj, items[a].Score, items[a].Obj)
	})
	if len(items) > k {
		items = items[:k]
	}
	return items
}

// roundRobinPreds returns the predicate indices with sorted capability, in
// index order, for algorithms that cycle sorted accesses across lists.
func roundRobinPreds(sess *access.Session) []int {
	var preds []int
	for i := 0; i < sess.M(); i++ {
		if sess.Costs(i).SortedOK {
			preds = append(preds, i)
		}
	}
	return preds
}

// requireAll verifies an algorithm's capability assumptions, returning a
// descriptive error naming the algorithm when the scenario falls outside
// the cell of Figure 2 the algorithm was designed for.
func requireAll(name string, sess *access.Session, needSorted, needRandom bool) error {
	for i := 0; i < sess.M(); i++ {
		pc := sess.Costs(i)
		if needSorted && !pc.SortedOK {
			return fmt.Errorf("algo: %s requires sorted access on every predicate; p%d does not support it", name, i+1)
		}
		if needRandom && !pc.RandomOK {
			return fmt.Errorf("algo: %s requires random access on every predicate; p%d does not support it", name, i+1)
		}
	}
	return nil
}
