package algo

import (
	"errors"
	"fmt"
	"io"

	"repro/internal/access"
	"repro/internal/state"
)

// Stream is the incremental form of Framework NC: answers are produced
// one at a time, best first, and the caller decides when to stop — the
// natural API for the paper's "best first" motivation. A top-k query is
// simply draining k items; "give me five more" is five more Next calls,
// reusing all score state already paid for (retrieval size never has to
// be fixed up front).
//
// Next returns io.EOF once every object has been emitted, and
// access.ErrBudgetExhausted (wrapped) when a session budget runs dry —
// unlike NC.Run's anytime fill, a stream has no k to fill toward, so it
// surfaces the condition and leaves the caller in charge.
type Stream struct {
	sel     Selector
	epsilon float64
	sess    *access.Session
	tab     *state.Table
	q       *state.Queue
	emitted []bool
	err     error
}

// NewStream prepares incremental evaluation for the problem's query. The
// problem's K is ignored (the caller controls how far to drain) but must
// still be positive for validation symmetry. The problem is consumed, as
// with any algorithm.
func NewStream(p *Problem, sel Selector, epsilon float64) (*Stream, error) {
	if sel == nil {
		return nil, fmt.Errorf("algo: stream requires a selector")
	}
	if epsilon < 0 {
		return nil, fmt.Errorf("algo: stream epsilon must be >= 0, got %g", epsilon)
	}
	if err := p.Begin(); err != nil {
		return nil, err
	}
	tab, err := state.NewTable(p.Session.N(), p.Session.M(), p.F)
	if err != nil {
		return nil, err
	}
	return &Stream{
		sel:     sel,
		epsilon: epsilon,
		sess:    p.Session,
		tab:     tab,
		q:       state.NewQueue(tab, p.Session.NoWildGuesses()),
		emitted: make([]bool, p.Session.N()),
	}, nil
}

// Next produces the next-best object. It performs exactly the accesses
// Framework NC would perform to prove the next answer, and no more.
func (s *Stream) Next() (Item, error) {
	if s.err != nil {
		return Item{}, s.err
	}
	for {
		top, ok := s.q.Peek()
		if !ok {
			s.err = io.EOF
			return Item{}, s.err
		}
		if top.ID != state.UnseenID && s.tab.Complete(top.ID) {
			s.q.Pop()
			s.emitted[top.ID] = true
			exact, _ := s.tab.Exact(top.ID)
			return Item{Obj: top.ID, Score: exact, Exact: true}, nil
		}
		if s.epsilon > 0 && top.ID != state.UnseenID {
			if lo := s.tab.Lower(top.ID); top.Upper <= (1+s.epsilon)*lo {
				s.q.Pop()
				s.emitted[top.ID] = true
				return Item{Obj: top.ID, Score: lo, Exact: false}, nil
			}
		}
		choices := NecessaryChoices(s.tab, s.sess, top.ID)
		if len(choices) == 0 {
			s.err = fmt.Errorf("algo: stream stuck: task for object %d has no legal choices (scenario %q cannot answer the query)", top.ID, s.sess.Scenario().Name)
			return Item{}, s.err
		}
		ch := s.sel.Choose(s.tab, s.sess, top.ID, choices)
		obj, err := performChoice(s.tab, s.sess, top.ID, ch)
		if err != nil {
			if errors.Is(err, access.ErrBudgetExhausted) {
				// Recoverable for the caller (raise the budget, accept the
				// partial ranking); the stream itself stays closed.
				s.err = err
			} else {
				s.err = fmt.Errorf("algo: stream access failed: %w", err)
			}
			return Item{}, s.err
		}
		if ch.Kind == access.SortedAccess && !s.emitted[obj] && !s.q.Contains(obj) {
			s.q.Add(obj)
		}
	}
}

// Drain pulls up to k items (fewer if the database is smaller).
func (s *Stream) Drain(k int) ([]Item, error) {
	var items []Item
	for len(items) < k {
		it, err := s.Next()
		if errors.Is(err, io.EOF) {
			return items, nil
		}
		if err != nil {
			return items, err
		}
		items = append(items, it)
	}
	return items, nil
}

// Cost reports the access cost accrued so far.
func (s *Stream) Cost() access.Cost { return s.sess.Ledger().TotalCost }

// Ledger snapshots the accesses performed so far.
func (s *Stream) Ledger() access.Ledger { return s.sess.Ledger() }
