package algo

import (
	"fmt"
)

// MPro is the probe-scheduling algorithm for the "sorted access
// impossible" column of Figure 2: objects are discovered through a single
// cheap retrieval predicate, while all other predicates are evaluated only
// by (expensive) probes following one fixed global predicate schedule
// Omega — the G of the paper's SR/G heuristics, which Section 7.1 adopts
// from MPro.
//
// As Section 8 argues, MPro is a point of the NC space: it is exactly
// Framework NC driven by an SR/G selector with a fully-drained depth on
// the retrieval predicate (h = 0) and no sorted access anywhere else
// (h = 1). We implement it precisely that way, which makes the paper's
// unification claim executable.
type MPro struct {
	// Omega is the global probe schedule (a permutation of all predicate
	// indices). Nil defaults to index order; the optimizer's
	// Omega-optimization supplies better schedules.
	Omega []int
}

// Name returns "MPro".
func (mp MPro) Name() string { return "MPro" }

// Run executes MPro via Framework NC.
func (mp MPro) Run(p *Problem) (*Result, error) {
	sess := p.Session
	h := make([]float64, sess.M())
	retrieval := -1
	for i := 0; i < sess.M(); i++ {
		if sess.Costs(i).SortedOK {
			if retrieval == -1 {
				retrieval = i
				h[i] = 0 // drain the retrieval list as deep as needed
			} else {
				h[i] = 1 // additional sorted lists exist: MPro ignores them
			}
		} else {
			h[i] = 1
		}
	}
	if retrieval == -1 {
		return nil, fmt.Errorf("algo: MPro requires a retrieval predicate with sorted access")
	}
	sel, err := NewSRG(h, mp.Omega)
	if err != nil {
		return nil, err
	}
	return (&NC{Sel: sel}).Run(p)
}

// Upper is the per-object adaptive probing algorithm (Marian et al.),
// the other reference of the probe-only column: like MPro it works on the
// object with the greatest maximal-possible score, but it chooses which
// predicate to probe per object, by greatest potential bound reduction per
// unit cost, instead of one global schedule.
type Upper struct{}

// Name returns "Upper".
func (Upper) Name() string { return "Upper" }

// Run executes Upper via Framework NC with the adaptive selector.
func (Upper) Run(p *Problem) (*Result, error) {
	return (&NC{Sel: &UpperSelector{}}).Run(p)
}
