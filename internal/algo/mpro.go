package algo

import (
	"fmt"
)

// MPro is the probe-scheduling algorithm for the "sorted access
// impossible" column of Figure 2: objects are discovered through a single
// cheap retrieval predicate, while all other predicates are evaluated only
// by (expensive) probes following one fixed global predicate schedule
// Omega — the G of the paper's SR/G heuristics, which Section 7.1 adopts
// from MPro.
//
// As Section 8 argues, MPro is a point of the NC space: it is exactly
// Framework NC driven by an SR/G selector with a fully-drained depth on
// the retrieval predicate (h = 0) and no sorted access anywhere else
// (h = 1). We implement it precisely that way, which makes the paper's
// unification claim executable.
type MPro struct {
	// Omega is the global probe schedule (a permutation of all predicate
	// indices). Nil defaults to index order; the optimizer's
	// Omega-optimization supplies better schedules.
	Omega []int
	// Monitor, when non-nil, is installed on the derived NC frame: MPro
	// runs fire the same checkpoint hook as any NC execution.
	Monitor AccessObserver
}

// Name returns "MPro".
func (mp MPro) Name() string { return "MPro" }

// Run executes MPro via Framework NC.
func (mp MPro) Run(p *Problem) (*Result, error) {
	nc, err := mp.frame(p)
	if err != nil {
		return nil, err
	}
	return nc.Run(p)
}

// Open suspends MPro as a resumable cursor: since MPro is exactly
// Framework NC under the derived SR/G selector, its cursor is the NC
// cursor with that selector — deepening inherits NC's byte-identical
// resume contract for free.
func (mp MPro) Open(p *Problem, sc *Scratch) (*Cursor, error) {
	nc, err := mp.frame(p)
	if err != nil {
		return nil, err
	}
	return nc.Open(p, sc)
}

// frame derives MPro's point in the NC space for the problem's scenario:
// a fully-drained depth on the first sorted (retrieval) predicate and
// probe-only evaluation everywhere else, following the global schedule
// Omega.
func (mp MPro) frame(p *Problem) (*NC, error) {
	sess := p.Session
	h := make([]float64, sess.M())
	retrieval := -1
	for i := 0; i < sess.M(); i++ {
		if sess.Costs(i).SortedOK {
			if retrieval == -1 {
				retrieval = i
				h[i] = 0 // drain the retrieval list as deep as needed
			} else {
				h[i] = 1 // additional sorted lists exist: MPro ignores them
			}
		} else {
			h[i] = 1
		}
	}
	if retrieval == -1 {
		return nil, fmt.Errorf("algo: MPro requires a retrieval predicate with sorted access")
	}
	sel, err := NewSRG(h, mp.Omega)
	if err != nil {
		return nil, err
	}
	return &NC{Sel: sel, Monitor: mp.Monitor}, nil
}

// Upper is the per-object adaptive probing algorithm (Marian et al.),
// the other reference of the probe-only column: like MPro it works on the
// object with the greatest maximal-possible score, but it chooses which
// predicate to probe per object, by greatest potential bound reduction per
// unit cost, instead of one global schedule.
type Upper struct{}

// Name returns "Upper".
func (Upper) Name() string { return "Upper" }

// Run executes Upper via Framework NC with the adaptive selector.
func (Upper) Run(p *Problem) (*Result, error) {
	return (&NC{Sel: &UpperSelector{}}).Run(p)
}
