package algo

import (
	"errors"
	"fmt"

	"repro/internal/access"
	"repro/internal/state"
)

// TA is Fagin's Threshold Algorithm, the classic for the uniform-cost
// cells of Figure 2. Its three characteristic behaviours (Section 8.1):
// equal-depth sorted access (one access per list per round),
// exhaustive random access (every newly seen object is fully probed
// immediately), and early stop (halt as soon as k objects score at least
// the threshold T = F(ell_1, ..., ell_m)).
//
// TA requires sorted and random capability on every predicate.
type TA struct{}

// Name returns "TA".
func (TA) Name() string { return "TA" }

// Run executes TA.
func (TA) Run(p *Problem) (*Result, error) {
	cur, err := TA{}.Open(p)
	if err != nil {
		return nil, err
	}
	return cur.Next(p.K)
}

// TACursor is TA's resumable form: the round-robin sorted rounds, the
// fully-probed object pool, and the threshold state survive between pages.
// TA's rounds do not depend on k — only the early-stop test does, and the
// test for a larger k is strictly harder — so resuming k -> k+delta runs
// exactly the extra rounds a fresh k+delta execution would have run, and
// the concatenated pages equal its ranking (the ranking's prefix is stable
// because the stop test proves the current top-target is final before
// emitting).
type TACursor struct {
	sess      *access.Session
	tab       *state.Table
	preds     []int
	processed []bool
	probeBuf  []int
	done      []Item
	emittedN  int
	drained   bool
	closed    bool
	err       error
	release   func()

	// Monitor, when non-nil, receives every performed access — the same
	// checkpoint hook NC cursors fire, so one divergence monitor covers
	// all three executors. TA has no plan degrees of freedom to re-plan,
	// but divergence and guard telemetry still flow. Set between pages.
	Monitor AccessObserver
}

// Open suspends TA over the problem before its first access. The problem
// is consumed; p.K only validates the query.
func (TA) Open(p *Problem) (*TACursor, error) {
	if err := p.Begin(); err != nil {
		return nil, err
	}
	sess := p.Session
	if err := requireAll("TA", sess, true, true); err != nil {
		return nil, err
	}
	tab, err := state.NewTable(sess.N(), sess.M(), p.F)
	if err != nil {
		return nil, err
	}
	return &TACursor{
		sess:      sess,
		tab:       tab,
		preds:     roundRobinPreds(sess),
		processed: make([]bool, sess.N()),
	}, nil
}

// Next resumes TA's sorted rounds until delta more answers clear the
// threshold (fewer if the lists are exhausted first). The page carries
// only the new answers; the ledger is cumulative.
func (tc *TACursor) Next(delta int) (*Result, error) {
	if tc.closed {
		return nil, ErrCursorClosed
	}
	if tc.err != nil {
		return nil, tc.err
	}
	if delta < 0 {
		return nil, fmt.Errorf("algo: cursor page size must be >= 0, got %d", delta)
	}
	if delta == 0 {
		return &Result{Items: []Item{}, Ledger: tc.sess.Ledger()}, nil
	}
	target := tc.emittedN + delta
	for !tc.drained && !(len(tc.done) >= target && kthBest(tc.done, target) >= tc.tab.UnseenUpper()) {
		if err := tc.round(); err != nil {
			return nil, err
		}
	}
	ranked := rankItems(append([]Item(nil), tc.done...), target)
	page := ranked[min(tc.emittedN, len(ranked)):]
	tc.emittedN += len(page)
	return &Result{Items: page, Ledger: tc.sess.Ledger()}, nil
}

// round performs one equal-depth sorted round with TA's exhaustive random
// probing of every newly seen object; it marks the cursor drained when
// every list is exhausted.
func (tc *TACursor) round() error {
	advanced := false
	for _, i := range tc.preds {
		if tc.sess.SortedExhausted(i) {
			continue
		}
		obj, s, err := tc.sess.SortedNext(i)
		if err != nil {
			tc.err = err
			return err
		}
		advanced = true
		tc.tab.ObserveSorted(i, obj, s)
		if tc.Monitor != nil {
			tc.Monitor.ObserveAccess(tc.tab, Choice{Kind: access.SortedAccess, Pred: i}, obj, s)
		}
		if tc.processed[obj] {
			continue
		}
		tc.processed[obj] = true
		tc.probeBuf = tc.tab.UnknownPreds(obj, tc.probeBuf[:0])
		for _, j := range tc.probeBuf {
			v, err := tc.sess.Random(j, obj)
			if err != nil {
				tc.err = err
				return err
			}
			tc.tab.ObserveRandom(j, obj, v)
			if tc.Monitor != nil {
				tc.Monitor.ObserveAccess(tc.tab, Choice{Kind: access.RandomAccess, Pred: j}, obj, v)
			}
		}
		exact, _ := tc.tab.Exact(obj)
		tc.done = append(tc.done, Item{Obj: obj, Score: exact, Exact: true})
	}
	if !advanced {
		tc.drained = true // every list exhausted: all objects processed
	}
	return nil
}

// Emitted reports the total answers produced across all pages.
func (tc *TACursor) Emitted() int { return tc.emittedN }

// Exhausted reports whether every object has been emitted.
func (tc *TACursor) Exhausted() bool { return tc.drained && tc.emittedN >= len(tc.done) }

// Ledger snapshots the cumulative access ledger.
func (tc *TACursor) Ledger() access.Ledger { return tc.sess.Ledger() }

// Close ends the run. Idempotent.
func (tc *TACursor) Close() {
	if tc.closed {
		return
	}
	tc.closed = true
	if tc.release != nil {
		fn := tc.release
		tc.release = nil
		fn()
	}
}

// SetRelease registers a hook run exactly once when the cursor closes.
func (tc *TACursor) SetRelease(fn func()) { tc.release = fn }

var _ Pager = (*TACursor)(nil)
var _ Pager = (*Cursor)(nil)

// kthBest returns the k-th largest score among items (k <= len(items)).
func kthBest(items []Item, k int) float64 {
	// Selection by partial copy; n stays small enough that an O(n log n)
	// approach is irrelevant to access-cost experiments, but we avoid
	// sorting the caller's slice.
	top := make([]float64, 0, k)
	for _, it := range items {
		s := it.Score
		pos := len(top)
		for pos > 0 && top[pos-1] < s {
			pos--
		}
		if pos < k {
			if len(top) < k {
				top = append(top, 0)
			}
			copy(top[pos+1:], top[pos:len(top)-1])
			top[pos] = s
		}
	}
	return top[len(top)-1]
}

// FA is Fagin's original algorithm [FA96]: round-robin sorted access until
// at least k objects have been seen under *every* predicate, then random
// access to complete every seen object, then rank. It is correct for any
// monotone F but accesses far more than TA; it serves as the historical
// baseline of the uniform cells.
type FA struct{}

// Name returns "FA".
func (FA) Name() string { return "FA" }

// Run executes FA.
func (FA) Run(p *Problem) (*Result, error) {
	if err := p.Begin(); err != nil {
		return nil, err
	}
	sess := p.Session
	if err := requireAll("FA", sess, true, true); err != nil {
		return nil, err
	}
	tab, err := state.NewTable(sess.N(), sess.M(), p.F)
	if err != nil {
		return nil, err
	}
	preds := roundRobinPreds(sess)
	m := len(preds)

	// Phase 1: equal-depth sorted rounds until k objects are seen in all
	// lists. During this phase every known score came from sorted access,
	// so KnownCount(u) == m iff u appeared in every list.
	seenAll := 0
	for seenAll < p.K {
		advanced := false
		for _, i := range preds {
			if sess.SortedExhausted(i) {
				continue
			}
			obj, s, err := sess.SortedNext(i)
			if err != nil {
				return nil, err
			}
			advanced = true
			before := tab.KnownCount(obj)
			tab.ObserveSorted(i, obj, s)
			if before == m-1 && tab.KnownCount(obj) == m {
				seenAll++
			}
		}
		if !advanced {
			break
		}
	}

	// Phase 2: complete every seen object by random access and rank.
	var done []Item
	var scratch []int
	for u := 0; u < sess.N(); u++ {
		if !sess.Seen(u) {
			continue
		}
		scratch = tab.UnknownPreds(u, scratch[:0])
		for _, j := range scratch {
			v, err := sess.Random(j, u)
			if err != nil {
				return nil, err
			}
			tab.ObserveRandom(j, u, v)
		}
		exact, _ := tab.Exact(u)
		done = append(done, Item{Obj: u, Score: exact, Exact: true})
	}
	return &Result{Items: rankItems(done, p.K), Ledger: sess.Ledger()}, nil
}

// ErrInapplicable marks algorithms refusing a scenario or scoring function
// outside their design envelope (e.g. Quick-Combine on min, whose
// derivative indicator the paper notes is inapplicable).
var ErrInapplicable = errors.New("algo: algorithm inapplicable")
