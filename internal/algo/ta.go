package algo

import (
	"errors"

	"repro/internal/state"
)

// TA is Fagin's Threshold Algorithm, the classic for the uniform-cost
// cells of Figure 2. Its three characteristic behaviours (Section 8.1):
// equal-depth sorted access (one access per list per round),
// exhaustive random access (every newly seen object is fully probed
// immediately), and early stop (halt as soon as k objects score at least
// the threshold T = F(ell_1, ..., ell_m)).
//
// TA requires sorted and random capability on every predicate.
type TA struct{}

// Name returns "TA".
func (TA) Name() string { return "TA" }

// Run executes TA.
func (TA) Run(p *Problem) (*Result, error) {
	if err := p.Begin(); err != nil {
		return nil, err
	}
	sess := p.Session
	if err := requireAll("TA", sess, true, true); err != nil {
		return nil, err
	}
	tab, err := state.NewTable(sess.N(), sess.M(), p.F)
	if err != nil {
		return nil, err
	}
	preds := roundRobinPreds(sess)
	var done []Item
	processed := make([]bool, sess.N())
	var scratch []int

	for {
		advanced := false
		for _, i := range preds {
			if sess.SortedExhausted(i) {
				continue
			}
			obj, s, err := sess.SortedNext(i)
			if err != nil {
				return nil, err
			}
			advanced = true
			tab.ObserveSorted(i, obj, s)
			if processed[obj] {
				continue
			}
			processed[obj] = true
			scratch = tab.UnknownPreds(obj, scratch[:0])
			for _, j := range scratch {
				v, err := sess.Random(j, obj)
				if err != nil {
					return nil, err
				}
				tab.ObserveRandom(j, obj, v)
			}
			exact, _ := tab.Exact(obj)
			done = append(done, Item{Obj: obj, Score: exact, Exact: true})
		}
		if !advanced {
			break // every list exhausted: all objects processed
		}
		if len(done) >= p.K && kthBest(done, p.K) >= tab.UnseenUpper() {
			break // early-stop: k objects at or above the threshold
		}
	}
	return &Result{Items: rankItems(done, p.K), Ledger: sess.Ledger()}, nil
}

// kthBest returns the k-th largest score among items (k <= len(items)).
func kthBest(items []Item, k int) float64 {
	// Selection by partial copy; n stays small enough that an O(n log n)
	// approach is irrelevant to access-cost experiments, but we avoid
	// sorting the caller's slice.
	top := make([]float64, 0, k)
	for _, it := range items {
		s := it.Score
		pos := len(top)
		for pos > 0 && top[pos-1] < s {
			pos--
		}
		if pos < k {
			if len(top) < k {
				top = append(top, 0)
			}
			copy(top[pos+1:], top[pos:len(top)-1])
			top[pos] = s
		}
	}
	return top[len(top)-1]
}

// FA is Fagin's original algorithm [FA96]: round-robin sorted access until
// at least k objects have been seen under *every* predicate, then random
// access to complete every seen object, then rank. It is correct for any
// monotone F but accesses far more than TA; it serves as the historical
// baseline of the uniform cells.
type FA struct{}

// Name returns "FA".
func (FA) Name() string { return "FA" }

// Run executes FA.
func (FA) Run(p *Problem) (*Result, error) {
	if err := p.Begin(); err != nil {
		return nil, err
	}
	sess := p.Session
	if err := requireAll("FA", sess, true, true); err != nil {
		return nil, err
	}
	tab, err := state.NewTable(sess.N(), sess.M(), p.F)
	if err != nil {
		return nil, err
	}
	preds := roundRobinPreds(sess)
	m := len(preds)

	// Phase 1: equal-depth sorted rounds until k objects are seen in all
	// lists. During this phase every known score came from sorted access,
	// so KnownCount(u) == m iff u appeared in every list.
	seenAll := 0
	for seenAll < p.K {
		advanced := false
		for _, i := range preds {
			if sess.SortedExhausted(i) {
				continue
			}
			obj, s, err := sess.SortedNext(i)
			if err != nil {
				return nil, err
			}
			advanced = true
			before := tab.KnownCount(obj)
			tab.ObserveSorted(i, obj, s)
			if before == m-1 && tab.KnownCount(obj) == m {
				seenAll++
			}
		}
		if !advanced {
			break
		}
	}

	// Phase 2: complete every seen object by random access and rank.
	var done []Item
	var scratch []int
	for u := 0; u < sess.N(); u++ {
		if !sess.Seen(u) {
			continue
		}
		scratch = tab.UnknownPreds(u, scratch[:0])
		for _, j := range scratch {
			v, err := sess.Random(j, u)
			if err != nil {
				return nil, err
			}
			tab.ObserveRandom(j, u, v)
		}
		exact, _ := tab.Exact(u)
		done = append(done, Item{Obj: u, Score: exact, Exact: true})
	}
	return &Result{Items: rankItems(done, p.K), Ledger: sess.Ledger()}, nil
}

// ErrInapplicable marks algorithms refusing a scenario or scoring function
// outside their design envelope (e.g. Quick-Combine on min, whose
// derivative indicator the paper notes is inapplicable).
var ErrInapplicable = errors.New("algo: algorithm inapplicable")
