package algo

import "fmt"

// NewNC builds the Framework-NC algorithm with an SR/G selector for the
// given depth and schedule configuration — the unit the optimizer
// enumerates over (every SR algorithm is identified by an (H, Omega) pair,
// Section 7.1).
func NewNC(h []float64, omega []int) (Algorithm, error) {
	sel, err := NewSRG(h, omega)
	if err != nil {
		return nil, err
	}
	return &NC{Sel: sel}, nil
}

// ByName instantiates a baseline algorithm by name: "FA", "TA", "CA",
// "NRA", "MPro", "Upper", "Quick-Combine", "Stream-Combine", "SR-Combine".
// Framework NC needs a configuration and is built with NewNC instead.
func ByName(name string) (Algorithm, error) {
	switch name {
	case "FA":
		return FA{}, nil
	case "TA":
		return TA{}, nil
	case "CA":
		return CA{}, nil
	case "NRA":
		return NRA{}, nil
	case "MPro":
		return MPro{}, nil
	case "Upper":
		return Upper{}, nil
	case "Quick-Combine":
		return QuickCombine{}, nil
	case "Stream-Combine":
		return StreamCombine{}, nil
	case "SR-Combine":
		return SRCombine{}, nil
	default:
		return nil, fmt.Errorf("algo: unknown algorithm %q", name)
	}
}

// Names lists the baseline algorithm names accepted by ByName.
func Names() []string {
	return []string{"FA", "TA", "CA", "NRA", "MPro", "Upper", "Quick-Combine", "Stream-Combine", "SR-Combine"}
}
