package algo

import (
	"fmt"

	"repro/internal/access"
	"repro/internal/state"
)

// SRG is the paper's SR/G Select (Figure 9): the Framework-NC selector
// parameterized by sorted-access depths H and a global random-access
// schedule Omega.
//
//   - SR ("sorted-then-random", Lemma 1): prefer a sorted access sa_i whose
//     last-seen score has not yet reached the suggested depth, i.e.
//     ell_i > h_i. Depths live in score space: h_i = 1 means "no sorted
//     access on p_i", h_i = 0 means "willing to drain the list".
//   - G ("global scheduling", adopted from MPro): when no sorted access is
//     below depth, probe the target object's next unevaluated predicate in
//     the fixed order Omega.
//
// Two pragmatic rules keep the selector total without affecting the
// configurations the optimizer compares: ties among eligible sorted
// accesses are broken by Omega order (deterministic), and if neither rule
// yields a legal access (e.g. depths reached but random access impossible
// on the remaining predicates), the first legal choice in Omega order is
// taken — the depths are guidance, never a source of nontermination.
type SRG struct {
	H     []float64 // depth thresholds, one per predicate, in [0,1]
	Omega []int     // permutation of predicate indices

	rank []int // rank[pred] = position in Omega, derived
}

// NewSRG validates and builds an SR/G selector for m predicates. A nil
// Omega defaults to index order.
func NewSRG(h []float64, omega []int) (*SRG, error) {
	m := len(h)
	if m == 0 {
		return nil, fmt.Errorf("algo: SRG requires at least one depth")
	}
	for i, x := range h {
		if x < 0 || x > 1 || x != x {
			return nil, fmt.Errorf("algo: SRG depth h_%d = %v outside [0,1]", i+1, x)
		}
	}
	if omega == nil {
		omega = make([]int, m)
		for i := range omega {
			omega[i] = i
		}
	}
	if len(omega) != m {
		return nil, fmt.Errorf("algo: SRG schedule length %d != %d predicates", len(omega), m)
	}
	rank := make([]int, m)
	for i := range rank {
		rank[i] = -1
	}
	for pos, pred := range omega {
		if pred < 0 || pred >= m || rank[pred] != -1 {
			return nil, fmt.Errorf("algo: SRG schedule %v is not a permutation of 0..%d", omega, m-1)
		}
		rank[pred] = pos
	}
	s := &SRG{H: append([]float64(nil), h...), Omega: append([]int(nil), omega...), rank: rank}
	return s, nil
}

// Name describes the configuration.
func (s *SRG) Name() string { return fmt.Sprintf("SR/G(H=%v,Omega=%v)", s.H, s.Omega) }

// Choose implements Selector per Figure 9.
func (s *SRG) Choose(t *state.Table, sess AccessContext, target int, choices []Choice) Choice {
	best := -1
	// Rule 1: sorted access still above its depth, earliest in Omega.
	for idx, ch := range choices {
		if ch.Kind != access.SortedAccess {
			continue
		}
		if t.LastSeen(ch.Pred) > s.H[ch.Pred] {
			if best == -1 || s.rank[ch.Pred] < s.rank[choices[best].Pred] {
				best = idx
			}
		}
	}
	if best >= 0 {
		return choices[best]
	}
	// Rule 2: random access on the next unevaluated predicate by Omega.
	for idx, ch := range choices {
		if ch.Kind != access.RandomAccess {
			continue
		}
		if best == -1 || s.rank[ch.Pred] < s.rank[choices[best].Pred] {
			best = idx
		}
	}
	if best >= 0 {
		return choices[best]
	}
	// Fallback: any legal choice, earliest in Omega (forced deepening).
	best = 0
	for idx, ch := range choices[1:] {
		if s.rank[ch.Pred] < s.rank[choices[best].Pred] {
			best = idx + 1
		}
	}
	return choices[best]
}

// UpperSelector is the adaptive per-object probe selector of Algorithm
// Upper (Marian et al., the paper's probe-only reference alongside MPro):
// instead of a fixed global schedule it probes, for each task, the
// undetermined predicate with the greatest potential to shrink the
// object's maximal-possible score per unit of probe cost.
//
// The potential of predicate i is F-bar(u) minus the bound recomputed with
// p_i set to 0 — how far the bound could fall if the probe comes back
// worst-case — divided by cr_i. Sorted accesses are used only for the
// virtual unseen object (cheapest list first), matching Upper's probe-only
// setting while remaining total in mixed scenarios.
type UpperSelector struct {
	buf []float64
}

// Name identifies the selector.
func (u *UpperSelector) Name() string { return "Upper" }

// Choose implements Selector.
func (u *UpperSelector) Choose(t *state.Table, sess AccessContext, target int, choices []Choice) Choice {
	if target == state.UnseenID {
		best := 0
		for idx, ch := range choices[1:] {
			if sess.Costs(ch.Pred).Sorted < sess.Costs(choices[best].Pred).Sorted {
				best = idx + 1
			}
		}
		return choices[best]
	}
	m := t.M()
	if cap(u.buf) < m {
		u.buf = make([]float64, m)
	}
	buf := u.buf[:m]
	upper := func(zero int) float64 {
		for i := 0; i < m; i++ {
			switch {
			case i == zero:
				buf[i] = 0
			case t.Known(target, i):
				buf[i] = t.Value(target, i)
			default:
				buf[i] = t.LastSeen(i)
			}
		}
		return t.Func().Eval(buf)
	}
	base := t.Upper(target)
	bestIdx, bestGain := -1, -1.0
	for idx, ch := range choices {
		if ch.Kind != access.RandomAccess {
			continue
		}
		drop := base - upper(ch.Pred)
		cost := sess.Costs(ch.Pred).Random.Units()
		if cost <= 0 {
			cost = 1e-9 // free probes are always best
		}
		gain := drop / cost
		if gain > bestGain {
			bestGain, bestIdx = gain, idx
		}
	}
	if bestIdx >= 0 {
		return choices[bestIdx]
	}
	// No probe available: fall back to the cheapest sorted access.
	best := 0
	for idx, ch := range choices[1:] {
		if sess.Costs(ch.Pred).Sorted < sess.Costs(choices[best].Pred).Sorted {
			best = idx + 1
		}
	}
	return choices[best]
}
