package algo

import (
	"errors"
	"math"
	"testing"

	"repro/internal/access"
	"repro/internal/data"
	"repro/internal/data/datatest"
	"repro/internal/score"
)

func TestBudgetedNCIsAnytime(t *testing.T) {
	ds := datatest.MustGenerate(data.Uniform, 300, 2, 66)
	scn := access.Uniform(2, 1, 1)
	k := 8
	f := score.Avg()

	// Unbudgeted reference.
	full, _ := mustRun(t, MustNCForTest(2), ds, scn, f, k)
	if full.Truncated {
		t.Fatal("unbudgeted run must not truncate")
	}
	fullCost := full.Cost()

	// Budget at half the needed cost: truncated, within budget, right
	// number of best-effort answers.
	half := access.Cost(fullCost / 2)
	res, sess := mustRun(t, MustNCForTest(2), ds, scn, f, k, access.WithBudget(half))
	if !res.Truncated {
		t.Fatal("half-budget run should truncate")
	}
	if got := sess.Ledger().TotalCost; got > half {
		t.Fatalf("spent %v over budget %v", got, half)
	}
	if len(res.Items) != k {
		t.Fatalf("anytime run returned %d items, want %d best-effort answers", len(res.Items), k)
	}
	for _, it := range res.Items {
		truth := f.Eval(ds.Scores(it.Obj))
		if it.Exact && math.Abs(it.Score-truth) > 1e-9 {
			t.Fatalf("item claims exact score %g, truth %g", it.Score, truth)
		}
		if !it.Exact && it.Score > truth+1e-9 {
			t.Fatalf("lower-bound score %g overstates truth %g", it.Score, truth)
		}
	}

	// Quality improves with budget: recall against the oracle set.
	oracle := make(map[int]bool, k)
	for _, r := range ds.TopK(f.Eval, k) {
		oracle[r.Obj] = true
	}
	recall := func(items []Item) float64 {
		hit := 0
		for _, it := range items {
			if oracle[it.Obj] {
				hit++
			}
		}
		return float64(hit) / float64(k)
	}
	tiny, _ := mustRun(t, MustNCForTest(2), ds, scn, f, k, access.WithBudget(fullCost/10))
	generous, _ := mustRun(t, MustNCForTest(2), ds, scn, f, k, access.WithBudget(fullCost*9/10))
	if recall(generous.Items) < recall(tiny.Items) {
		t.Errorf("recall should not degrade with budget: %.2f (10%%) vs %.2f (90%%)",
			recall(tiny.Items), recall(generous.Items))
	}

	// A generous budget changes nothing.
	unconstrained, _ := mustRun(t, MustNCForTest(2), ds, scn, f, k, access.WithBudget(fullCost*2))
	if unconstrained.Truncated || unconstrained.Cost() != fullCost {
		t.Errorf("generous budget changed the run: %v vs %v", unconstrained.Cost(), fullCost)
	}
}

func TestBudgetedBaselineErrors(t *testing.T) {
	ds := datatest.MustGenerate(data.Uniform, 100, 2, 3)
	sess := mustSession(t, ds, access.Uniform(2, 1, 1), access.WithBudget(5*access.UnitCost))
	prob, _ := NewProblem(score.Avg(), 10, sess)
	_, err := (TA{}).Run(prob)
	if !errors.Is(err, access.ErrBudgetExhausted) {
		t.Errorf("TA under budget: err = %v, want ErrBudgetExhausted", err)
	}
}

func TestBudgetNotChargedOnRefusal(t *testing.T) {
	ds := datatest.MustGenerate(data.Uniform, 10, 2, 3)
	sess := mustSession(t, ds, access.Uniform(2, 1, 10), access.WithBudget(15*access.UnitCost))
	if _, _, err := sess.SortedNext(0); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Random(0, sessFirstSeen(t, sess, ds)); err != nil {
		t.Fatal(err)
	}
	// 11 units spent; another probe (10) exceeds 15 and must not charge.
	before := sess.Ledger().TotalCost
	if _, err := sess.Random(1, sessFirstSeen(t, sess, ds)); !errors.Is(err, access.ErrBudgetExhausted) {
		t.Fatalf("err = %v", err)
	}
	if sess.Ledger().TotalCost != before {
		t.Error("refused access was charged")
	}
	// A cheap sorted access (1 unit) still fits.
	if _, _, err := sess.SortedNext(1); err != nil {
		t.Errorf("affordable access refused: %v", err)
	}
}

// sessFirstSeen returns an object already seen in the session.
func sessFirstSeen(t *testing.T, sess *access.Session, ds *data.Dataset) int {
	t.Helper()
	for u := 0; u < ds.N(); u++ {
		if sess.Seen(u) {
			return u
		}
	}
	t.Fatal("no seen object")
	return -1
}

func TestProblemIsSingleUse(t *testing.T) {
	ds := datatest.MustGenerate(data.Uniform, 20, 2, 1)
	sess := mustSession(t, ds, access.Uniform(2, 1, 1))
	prob, _ := NewProblem(score.Avg(), 3, sess)
	if _, err := (TA{}).Run(prob); err != nil {
		t.Fatal(err)
	}
	if _, err := (TA{}).Run(prob); err == nil {
		t.Error("second run on a consumed problem should fail")
	}
	if _, err := MustNCForTest(2).Run(prob); err == nil {
		t.Error("a different algorithm on a consumed problem should fail too")
	}
}
