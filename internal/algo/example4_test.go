package algo

import (
	"testing"

	"repro/internal/access"
)

// TestExample4CostModelScenarioSpecific reproduces the point of the
// paper's Example 4: the same two algorithms rank differently under
// different cost scenarios, which is why optimization must be specific to
// the runtime scenario. Algorithm A1 mixes sorted and random accesses
// (3 sa + 3 ra); A2 uses sorted accesses only (6 sa). In Example 1's
// scenario (random expensive) A2 is cheaper; in Example 2's scenario
// (random free) A1 is cheaper.
func TestExample4CostModelScenarioSpecific(t *testing.T) {
	ds := fig3()

	runTrace := func(scn access.Scenario, plan []Choice) access.Cost {
		t.Helper()
		sess := mustSession(t, ds, scn, access.WithoutNoWildGuesses())
		// Feed the fixed access schedule through the session, targeting
		// object ids deterministically for random accesses.
		nextObj := 0
		for _, ch := range plan {
			switch ch.Kind {
			case access.SortedAccess:
				if _, _, err := sess.SortedNext(ch.Pred); err != nil {
					t.Fatal(err)
				}
			case access.RandomAccess:
				if _, err := sess.Random(ch.Pred, nextObj); err != nil {
					t.Fatal(err)
				}
				nextObj++
			}
		}
		return sess.Ledger().TotalCost
	}

	// A1: sa1, ra2, sa1, ra2, sa1, ra2 (alternating, as Example 5's TG
	// illustration generates A1). A2: three sa on each list.
	a1 := []Choice{
		{access.SortedAccess, 0}, {access.RandomAccess, 1},
		{access.SortedAccess, 0}, {access.RandomAccess, 1},
		{access.SortedAccess, 0}, {access.RandomAccess, 1},
	}
	a2 := []Choice{
		{access.SortedAccess, 0}, {access.SortedAccess, 1},
		{access.SortedAccess, 0}, {access.SortedAccess, 1},
		{access.SortedAccess, 0}, {access.SortedAccess, 1},
	}

	// Example 1's shape: random accesses more expensive in both sources.
	ex1 := access.Scenario{Name: "ex1", Preds: []access.PredCost{
		{Sorted: access.CostOf(0.2), SortedOK: true, Random: access.CostOf(1.0), RandomOK: true},
		{Sorted: access.CostOf(0.1), SortedOK: true, Random: access.CostOf(0.5), RandomOK: true},
	}}
	// Example 2's shape: sorted accesses carry all attributes, random free.
	free := access.PredCost{Sorted: access.CostOf(0.3), SortedOK: true, Random: 0, RandomOK: true}
	ex2 := access.Scenario{Name: "ex2", Preds: []access.PredCost{free, free}}

	if c1, c2 := runTrace(ex1, a1), runTrace(ex1, a2); c1 <= c2 {
		t.Errorf("Example 1 scenario: A1 (%v) should cost more than A2 (%v)", c1, c2)
	}
	if c1, c2 := runTrace(ex2, a1), runTrace(ex2, a2); c1 >= c2 {
		t.Errorf("Example 2 scenario: A1 (%v) should cost less than A2 (%v)", c1, c2)
	}
}
