package algo

import (
	"fmt"

	"repro/internal/access"
	"repro/internal/data"
	"repro/internal/score"
	"repro/internal/state"
)

// This file makes Lemma 1 ("for any algorithm there exists an
// SR-counterpart with no more cost") executable: SRCounterpart reorders
// any performed access trace into sorted-then-random form, and
// ReplayTrace/Sufficient verify that a trace still gathers enough
// information to answer the query (Theorem 1's halting condition). The
// paper reports SR-inclusion as an empirical observation without a formal
// proof; the property tests built on these functions are that experiment,
// reproducible at will.

// SRCounterpart returns the SR-ordered version of a trace: all sorted
// accesses first (preserving their per-list order, which is forced — a
// sorted stream has only one order), then all random accesses in their
// original relative order. The counterpart performs exactly the same
// multiset of accesses, so by Eq. 1 it has exactly the original's cost;
// and because sorted accesses only move earlier, every random access still
// targets a seen object under no-wild-guesses.
func SRCounterpart(trace []access.Record) []access.Record {
	out := make([]access.Record, 0, len(trace))
	for _, r := range trace {
		if r.Kind == access.SortedAccess {
			out = append(out, r)
		}
	}
	for _, r := range trace {
		if r.Kind == access.RandomAccess {
			out = append(out, r)
		}
	}
	return out
}

// ReplayTrace feeds a trace into a fresh score-state table for the given
// dataset and scoring function, validating legality as it goes: sorted
// accesses must walk each list in order from the top, and random accesses
// must respect no-wild-guesses (when nwg is true) and non-repetition.
func ReplayTrace(ds *data.Dataset, f score.Func, trace []access.Record, nwg bool) (*state.Table, error) {
	tab, err := state.NewTable(ds.N(), ds.M(), f)
	if err != nil {
		return nil, err
	}
	cursor := make([]int, ds.M())
	probed := make(map[[2]int]bool)
	for i, r := range trace {
		switch r.Kind {
		case access.SortedAccess:
			obj, s := ds.SortedAt(r.Pred, cursor[r.Pred])
			if obj != r.Obj || s != r.Score {
				return nil, fmt.Errorf("algo: replay step %d: sa%d rank %d yields u%d(%g), trace says u%d(%g)",
					i, r.Pred+1, cursor[r.Pred], obj, s, r.Obj, r.Score)
			}
			cursor[r.Pred]++
			tab.ObserveSorted(r.Pred, obj, s)
		case access.RandomAccess:
			if nwg && !tab.Seen(r.Obj) {
				return nil, fmt.Errorf("algo: replay step %d: wild guess ra%d(u%d)", i, r.Pred+1, r.Obj)
			}
			key := [2]int{r.Pred, r.Obj}
			if probed[key] {
				return nil, fmt.Errorf("algo: replay step %d: repeated probe ra%d(u%d)", i, r.Pred+1, r.Obj)
			}
			probed[key] = true
			if truth := ds.Score(r.Obj, r.Pred); truth != r.Score {
				return nil, fmt.Errorf("algo: replay step %d: ra%d(u%d) = %g, trace says %g",
					i, r.Pred+1, r.Obj, truth, r.Score)
			}
			tab.ObserveRandom(r.Pred, r.Obj, r.Score)
		}
	}
	return tab, nil
}

// Sufficient reports whether the gathered score state satisfies
// Theorem 1's halting condition for a top-k query, up to ties: there are k
// completely evaluated objects whose exact scores are at least the
// maximal-possible score of every other object (including the virtual
// unseen one). Tie-tolerance matters: algorithms like TA halt with
// "at least the threshold", so an unresolved object may legitimately tie
// the k-th answer — any such tie permutation is a correct top-k. It
// returns one valid answer when sufficient.
func Sufficient(tab *state.Table, k int) ([]Item, bool) {
	if k > tab.N() {
		k = tab.N()
	}
	type cand struct {
		obj int
		ex  float64
	}
	top := make([]cand, 0, k)
	worse := func(a, b cand) bool { return data.Less(a.ex, a.obj, b.ex, b.obj) }
	inTop := make(map[int]bool, k)
	for u := 0; u < tab.N(); u++ {
		if !tab.Complete(u) {
			continue
		}
		ex, _ := tab.Exact(u)
		c := cand{obj: u, ex: ex}
		pos := len(top)
		for pos > 0 && worse(top[pos-1], c) {
			pos--
		}
		if pos < k {
			if len(top) < k {
				top = append(top, cand{})
			}
			copy(top[pos+1:], top[pos:len(top)-1])
			top[pos] = c
		}
	}
	if len(top) < k {
		return nil, false
	}
	kth := top[len(top)-1].ex
	for _, c := range top {
		inTop[c.obj] = true
	}
	const eps = 1e-12
	if !tab.AllSeen() && tab.UnseenUpper() > kth+eps {
		return nil, false
	}
	for u := 0; u < tab.N(); u++ {
		if inTop[u] {
			continue
		}
		if tab.Upper(u) > kth+eps {
			return nil, false
		}
	}
	items := make([]Item, len(top))
	for i, c := range top {
		items[i] = Item{Obj: c.obj, Score: c.ex, Exact: true}
	}
	return items, true
}
