// Package algotest provides panic-on-error constructors for tests that
// wire algorithm components with known-good literal parameters. The
// production constructors in internal/algo return errors (the serving
// path must never panic — see topklint's nopanic analyzer).
package algotest

import (
	"repro/internal/algo"
)

// MustSRG is algo.NewSRG that panics on error.
func MustSRG(h []float64, omega []int) *algo.SRG {
	s, err := algo.NewSRG(h, omega)
	if err != nil {
		panic(err)
	}
	return s
}
