package algo

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/access"
	"repro/internal/state"
)

// ErrCursorClosed is returned by Next/NextUntil on a closed cursor.
var ErrCursorClosed = errors.New("algo: cursor closed")

// Pager is a suspended top-k execution that can be deepened on demand:
// Next(delta) resumes exactly where the previous page stopped and proves
// the next delta answers without repeating any access already paid for.
// The NC Cursor and the TACursor implement it; the facade exposes either
// uniformly.
type Pager interface {
	// Next resumes the run until delta more answers are proven (fewer if
	// the database, a budget, or degradation runs out first). The returned
	// Result carries only the new page's Items; its Ledger is the
	// cumulative session ledger, so successive pages show monotone cost.
	Next(delta int) (*Result, error)
	// Emitted reports how many answers all pages together have produced.
	Emitted() int
	// Exhausted reports that every object has been emitted: further Next
	// calls return empty pages without performing accesses.
	Exhausted() bool
	// Ledger snapshots the cumulative access ledger.
	Ledger() access.Ledger
	// Close ends the run; subsequent Next calls fail with ErrCursorClosed.
	// Closing is idempotent.
	Close()
}

// Cursor is the suspended form of Framework NC: the per-query score state
// (table, candidate queue, emitted bitmap) plus the loop's fault-absorption
// counters, kept alive between pages. A Cursor lives inside its Scratch, so
// opening one on pooled scratch performs no additional allocation and
// closing it returns the whole working set to the pool at once.
//
// Resumption is byte-identical to recomputation: NC's access sequence does
// not depend on the retrieval size k — only the stop condition does — so
// Open(k) + Next(d1) + ... + Next(dn) performs exactly the access prefix a
// fresh k+Σd run would, and the concatenated pages equal its answer. This
// holds through budget truncation too: once truncated, pages keep draining
// the candidate queue in queue order, matching the fresh run's anytime
// fill.
type Cursor struct {
	// nc is read live on every iteration — not copied — so callers that
	// swap nc.Sel mid-run (the adaptive re-planner's OnAccess hook, the
	// facade's between-page re-planning) steer the very next access.
	nc      *NC
	sess    *access.Session
	sc      *Scratch
	tab     *state.Table
	q       *state.Queue
	emitted []bool

	emittedN   int
	consecFail int
	failBudget int
	// truncated is sticky: a budget exhaustion or unrecoverable
	// degradation permanently switches the cursor to draining queue
	// candidates (no further accesses), mirroring NC.Run's anytime fill.
	truncated bool
	degraded  []string
	exhausted bool
	closed    bool
	err       error
	// release, when set, runs once on Close — the facade uses it to return
	// pooled state.
	release func()
}

// Open suspends Framework NC over the problem before its first access.
// The problem is consumed, as with any algorithm; p.K only validates the
// query (paging is caller-controlled). A nil scratch allocates fresh
// working state; a pooled scratch makes Open allocation-free. The returned
// cursor lives inside the scratch: it is invalid once the scratch is
// reused or repooled.
func (nc *NC) Open(p *Problem, sc *Scratch) (*Cursor, error) {
	if nc.Sel == nil {
		return nil, fmt.Errorf("algo: cursor requires a selector")
	}
	if nc.Epsilon < 0 {
		return nil, fmt.Errorf("algo: cursor epsilon must be >= 0, got %g", nc.Epsilon)
	}
	if err := p.Begin(); err != nil {
		return nil, err
	}
	if sc == nil {
		sc = &Scratch{}
	}
	sess := p.Session
	tab, q, emitted, err := sc.prepare(sess.N(), sess.M(), p.F, sess.NoWildGuesses())
	if err != nil {
		return nil, err
	}
	c := &sc.cur
	*c = Cursor{
		nc:         nc,
		sess:       sess,
		sc:         sc,
		tab:        tab,
		q:          q,
		emitted:    emitted,
		failBudget: sess.FailureBudget(),
	}
	return c, nil
}

// SetSelector swaps the scheduling policy for subsequent accesses. The
// facade re-plans between pages when the access scenario changed (breaker
// flips, degradations): the preserved score state stays valid — only the
// choice of the next access is policy — so the cursor continues under the
// new plan without repeating work.
func (c *Cursor) SetSelector(sel Selector) error {
	if sel == nil {
		return fmt.Errorf("algo: cursor selector must be non-nil")
	}
	c.nc.Sel = sel
	return nil
}

// SetRelease registers a hook run exactly once when the cursor closes.
func (c *Cursor) SetRelease(fn func()) { c.release = fn }

// Emitted reports the total answers produced across all pages.
func (c *Cursor) Emitted() int { return c.emittedN }

// Exhausted reports whether every object has been emitted.
func (c *Cursor) Exhausted() bool { return c.exhausted }

// Truncated reports whether the run degraded to anytime draining.
func (c *Cursor) Truncated() bool { return c.truncated }

// Ledger snapshots the cumulative access ledger.
func (c *Cursor) Ledger() access.Ledger { return c.sess.Ledger() }

// Close ends the run and runs the release hook. Idempotent.
func (c *Cursor) Close() {
	if c.closed {
		return
	}
	c.closed = true
	if c.release != nil {
		fn := c.release
		c.release = nil
		fn()
	}
}

// Next resumes the framework until delta more answers are proven. The page
// is shorter than delta only when the database is exhausted or the run
// (now or previously) truncated with an empty candidate queue. delta = 0
// returns an empty page without performing accesses.
func (c *Cursor) Next(delta int) (*Result, error) {
	if c.closed {
		return nil, ErrCursorClosed
	}
	if c.err != nil {
		return nil, c.err
	}
	if delta < 0 {
		return nil, fmt.Errorf("algo: cursor page size must be >= 0, got %d", delta)
	}
	items := make([]Item, 0, delta)
	for len(items) < delta {
		if c.truncated {
			it, ok := c.drainOne()
			if !ok {
				break
			}
			items = append(items, it)
			continue
		}
		it, ok, err := c.advance(math.Inf(-1), false)
		if err != nil {
			return nil, err
		}
		if ok {
			items = append(items, it)
			continue
		}
		if !c.truncated {
			break // exhausted: fewer than requested objects exist
		}
	}
	return c.page(items), nil
}

// NextUntil is the score-range sibling of Next: it resumes the framework
// emitting every answer provably scoring at least tau, best first, and
// suspends — without consuming the boundary candidate — as soon as no
// remaining object (seen or unseen) can reach tau. The cursor state stays
// live: a later Next or NextUntil with a lower tau continues deeper. Under
// approximation (epsilon > 0) inexact items are emitted only when their
// lower bound already proves tau. A truncated cursor returns an empty
// degraded page: drained candidates carry no score proof, so a score-range
// page cannot include them.
func (c *Cursor) NextUntil(tau float64) (*Result, error) {
	if c.closed {
		return nil, ErrCursorClosed
	}
	if c.err != nil {
		return nil, c.err
	}
	var items []Item
	for !c.truncated {
		it, ok, err := c.advance(tau, true)
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		items = append(items, it)
	}
	return c.page(items), nil
}

// page assembles a Result for the newly emitted items.
func (c *Cursor) page(items []Item) *Result {
	c.emittedN += len(items)
	res := &Result{Items: items, Ledger: c.sess.Ledger()}
	if c.truncated {
		res.Truncated = true
		res.Degraded = c.degraded
	}
	return res
}

// drainOne pops the next best-effort candidate after truncation: exact if
// complete, otherwise the lower bound with Exact=false — the same fill
// NC.Run's anytime drain produces.
func (c *Cursor) drainOne() (Item, bool) {
	for {
		e, ok := c.q.Pop()
		if !ok {
			c.exhausted = true
			return Item{}, false
		}
		if e.ID == state.UnseenID {
			continue
		}
		if exact, done := c.tab.Exact(e.ID); done {
			return Item{Obj: e.ID, Score: exact, Exact: true}, true
		}
		return Item{Obj: e.ID, Score: c.tab.Lower(e.ID), Exact: false}, true
	}
}

// beginTruncation permanently switches the cursor to anytime draining.
func (c *Cursor) beginTruncation(degraded []string) {
	c.truncated = true
	c.degraded = degraded
}

// advance runs the NC scheduling loop until one more answer is proven.
// It returns (item, true, nil) on emission; (zero, false, nil) when no
// more answers can be proven — the queue is exhausted, the tau bound
// suspends the run, or the cursor just truncated (c.truncated set; the
// caller decides whether to drain); or a terminal error. The body is
// Framework NC's loop (Figure 6) exactly as NC.Run executes it, so pages
// concatenate into the access sequence of a single larger run.
func (c *Cursor) advance(tau float64, haveTau bool) (Item, bool, error) {
	tab, q, sess := c.tab, c.q, c.sess
	for {
		if c.nc.Obs != nil {
			c.nc.Obs.LoopIteration(q.Len())
		}
		top, ok := q.Peek()
		if !ok {
			c.exhausted = true
			return Item{}, false, nil
		}
		if haveTau && top.Upper < tau {
			// No candidate — seen or unseen — can still reach tau: the
			// queue head bounds every remaining score. Suspend without
			// consuming the head; deeper paging can resume from it.
			return Item{}, false, nil
		}
		if top.ID != state.UnseenID && tab.Complete(top.ID) {
			// Satisfied task at the head: top.Upper is its exact score and
			// dominates every remaining candidate's bound, so it is the
			// next answer (Theorem 1, condition 2, applied incrementally).
			q.Pop()
			c.emitted[top.ID] = true
			exact, _ := tab.Exact(top.ID)
			return Item{Obj: top.ID, Score: exact, Exact: true}, true, nil
		}
		if c.nc.Epsilon > 0 && top.ID != state.UnseenID {
			// Approximate emission: the candidate dominates every remaining
			// bound (it is the queue head), and its own interval is within
			// the theta = 1+epsilon slack. Under a tau bound the lower
			// bound must additionally prove tau.
			if lo := tab.Lower(top.ID); top.Upper <= (1+c.nc.Epsilon)*lo && (!haveTau || lo >= tau) {
				q.Pop()
				c.emitted[top.ID] = true
				return Item{Obj: top.ID, Score: lo, Exact: false}, true, nil
			}
		}
		// Unsatisfied task (Theorem 1, condition 1): gather its necessary
		// choices (Definition 2) and let the Selector pick.
		choices := AppendNecessaryChoices(c.sc.choices[:0], tab, sess, top.ID)
		c.sc.choices = choices
		if len(choices) == 0 {
			if sess.FaultTolerant() && len(sess.Degraded()) > 0 {
				// Degradation removed every legal choice for this task: the
				// scenario can no longer answer the query exactly. Degrade
				// to anytime draining — the outage is a scenario change,
				// not a bug.
				if c.nc.Obs != nil {
					c.nc.Obs.DegradedReplan("no_legal_plan")
				}
				c.beginTruncation(append(sess.Degraded(), "no_legal_plan"))
				return Item{}, false, nil
			}
			c.err = fmt.Errorf("algo: NC stuck: task for object %d has no legal choices (scenario %q cannot answer the query)", top.ID, sess.Scenario().Name)
			return Item{}, false, c.err
		}
		ch := c.nc.Sel.Choose(tab, sess, top.ID, choices)
		obj, sc, err := performChoice(tab, sess, top.ID, ch)
		switch {
		case err == nil:
			c.consecFail = 0
		case errors.Is(err, access.ErrBudgetExhausted):
			// Anytime behaviour: the budget cannot cover the framework's
			// chosen access.
			c.beginTruncation(sess.Degraded())
			return Item{}, false, nil
		case errors.Is(err, access.ErrCircuitOpen) || errors.Is(err, access.ErrAccessFailed):
			// Fault-tolerant absorption: nothing was billed, the failure
			// was recorded against the capability's breaker, and the
			// scenario may have degraded — re-derive the choices and
			// re-plan instead of failing the query.
			c.consecFail++
			if c.nc.Obs != nil {
				c.nc.Obs.DegradedReplan(replanReason(err))
			}
			if c.consecFail > c.failBudget {
				c.beginTruncation(append(sess.Degraded(), "failure_budget_exhausted"))
				return Item{}, false, nil
			}
			continue
		case sess.FaultTolerant() && sess.Err() != nil:
			// The query's own deadline (or cancellation) fired mid-run:
			// degrade to the best current answer, never hang or lose the
			// work already paid for.
			c.beginTruncation(append(sess.Degraded(), deadlineReason(sess.Err())))
			return Item{}, false, nil
		default:
			c.err = err
			return Item{}, false, err
		}
		if err == nil && ch.Kind == access.SortedAccess && !c.emitted[obj] && !q.Contains(obj) {
			q.Add(obj)
		}
		if c.nc.OnAccess != nil {
			c.nc.OnAccess(tab, ch)
		}
		if c.nc.Monitor != nil {
			c.nc.Monitor.ObserveAccess(tab, ch, obj, sc)
		}
	}
}
