package algo

import (
	"errors"
	"math"
	"sort"
	"testing"

	"repro/internal/access"
	"repro/internal/data"
	"repro/internal/data/datatest"
	"repro/internal/score"
)

// fig3 is the paper's Dataset 1 (Figure 3): sorted access on p1 yields
// u3(.7), u2(.65), u1(.6); under F = min the top-1 is u3 with score .7.
// Paper objects u1,u2,u3 are OIDs 0,1,2.
func fig3() *data.Dataset {
	return datatest.MustNew("fig3", [][]float64{
		{0.6, 0.8},
		{0.65, 0.8},
		{0.7, 0.9},
	})
}

func mustSession(t *testing.T, ds *data.Dataset, scn access.Scenario, opts ...access.Option) *access.Session {
	t.Helper()
	sess, err := access.NewSession(access.DatasetBackend{DS: ds}, scn, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return sess
}

func mustRun(t *testing.T, alg Algorithm, ds *data.Dataset, scn access.Scenario, f score.Func, k int, opts ...access.Option) (*Result, *access.Session) {
	t.Helper()
	sess := mustSession(t, ds, scn, opts...)
	prob, err := NewProblem(f, k, sess)
	if err != nil {
		t.Fatal(err)
	}
	res, err := alg.Run(prob)
	if err != nil {
		t.Fatalf("%s: %v", alg.Name(), err)
	}
	return res, sess
}

// assertTopK checks a result against the brute-force oracle, tolerating
// tie permutations: the multiset of *true* overall scores of the returned
// objects must equal the oracle's, every returned object must be distinct,
// and items flagged Exact must carry their true score.
func assertTopK(t *testing.T, name string, ds *data.Dataset, f score.Func, k int, res *Result) {
	t.Helper()
	oracle := ds.TopK(f.Eval, k)
	if len(res.Items) != len(oracle) {
		t.Fatalf("%s: returned %d items, oracle has %d", name, len(res.Items), len(oracle))
	}
	gotScores := make([]float64, len(res.Items))
	seen := make(map[int]bool)
	for i, it := range res.Items {
		if seen[it.Obj] {
			t.Fatalf("%s: duplicate object %d in result", name, it.Obj)
		}
		seen[it.Obj] = true
		truth := f.Eval(ds.Scores(it.Obj))
		gotScores[i] = truth
		if it.Exact && math.Abs(it.Score-truth) > 1e-9 {
			t.Fatalf("%s: object %d reported exact score %g, truth %g", name, it.Obj, it.Score, truth)
		}
	}
	wantScores := make([]float64, len(oracle))
	for i, r := range oracle {
		wantScores[i] = r.Score
	}
	sort.Float64s(gotScores)
	sort.Float64s(wantScores)
	for i := range gotScores {
		if math.Abs(gotScores[i]-wantScores[i]) > 1e-9 {
			t.Fatalf("%s: score multiset mismatch at %d: got %v want %v", name, i, gotScores, wantScores)
		}
	}
}

// TestNCFocusedConfigExample reproduces Example 10/11 and Figure 7: on
// Dataset 1 with F = min and k = 1, a focused configuration H = (0, 1)
// answers with exactly two accesses — sa1 (hitting u3 at .7) followed by
// ra2(u3) — returning u3 with score .7.
func TestNCFocusedConfigExample(t *testing.T) {
	alg, err := NewNC([]float64{0, 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, sess := mustRun(t, alg, fig3(), access.Uniform(2, 1, 1), score.Min(), 1, access.WithTrace())
	if len(res.Items) != 1 || res.Items[0].Obj != 2 || math.Abs(res.Items[0].Score-0.7) > 1e-12 {
		t.Fatalf("result = %+v, want u3(=OID 2) at 0.7", res.Items)
	}
	trace := sess.Trace()
	if len(trace) != 2 {
		t.Fatalf("trace = %v, want exactly 2 accesses", trace)
	}
	if trace[0].String() != "sa1->u2(0.70)" || trace[1].String() != "ra2(u2)=0.90" {
		t.Errorf("trace = %v, %v", trace[0], trace[1])
	}
	if res.Cost() != 2*access.UnitCost {
		t.Errorf("cost = %v, want 2 units", res.Cost())
	}
}

// TestNCParallelConfigExample exercises Figure 8's parallel configuration
// H = (0.6, 0.6): sorted access is preferred on every list still above its
// depth, so the trace consists of sorted accesses only (no probe happens
// before both depths are reached; on this tiny dataset the second sorted
// access already completes u3). The paper's Figure 8 trace is longer only
// because NC may "arbitrarily pick any" incomplete top object; our
// implementation's documented policy is the highest-ranked one.
func TestNCParallelConfigExample(t *testing.T) {
	alg, err := NewNC([]float64{0.6, 0.6}, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, sess := mustRun(t, alg, fig3(), access.Uniform(2, 1, 1), score.Min(), 1, access.WithTrace())
	if len(res.Items) != 1 || res.Items[0].Obj != 2 {
		t.Fatalf("result = %+v, want u3", res.Items)
	}
	trace := sess.Trace()
	for _, rec := range trace {
		if rec.Kind != access.SortedAccess {
			t.Fatalf("parallel config issued %v before reaching its depths", rec)
		}
	}
	if trace[0].Pred != 0 || trace[len(trace)-1].Pred != 1 {
		t.Errorf("trace = %v, want sa1 first (Omega order) then sa2", trace)
	}
}

// TestNCFocusedBeatsParallelUnderMin verifies Example 11's optimization
// claim at scale: for F = min, a focused depth configuration costs less
// than an equal-depth (parallel) one, while both return the correct top-k.
func TestNCFocusedBeatsParallelUnderMin(t *testing.T) {
	ds := datatest.MustGenerate(data.Uniform, 400, 2, 99)
	scn := access.Uniform(2, 1, 1)
	run := func(h []float64) access.Cost {
		alg, err := NewNC(h, nil)
		if err != nil {
			t.Fatal(err)
		}
		res, _ := mustRun(t, alg, ds, scn, score.Min(), 10)
		assertTopK(t, "NC/min", ds, score.Min(), 10, res)
		return res.Cost()
	}
	focused := run([]float64{0.3, 1})
	parallel := run([]float64{0.8, 0.8})
	if focused >= parallel {
		t.Errorf("focused cost %v should beat parallel cost %v under min", focused, parallel)
	}
}

func TestNCAllBaselineScenarios(t *testing.T) {
	ds := datatest.MustGenerate(data.Uniform, 60, 3, 17)
	scns := []access.Scenario{
		access.Uniform(3, 1, 1),
		access.MatrixCell(3, Cheap, Expensive, 10),
		access.MatrixCell(3, Cheap, Impossible, 10),
		access.MatrixCell(3, Impossible, Cheap, 10),
		access.MatrixCell(3, Expensive, Cheap, 10), // the "?" cell of Figure 2
	}
	for _, scn := range scns {
		for _, f := range []score.Func{score.Min(), score.Avg()} {
			alg, err := NewNC([]float64{0.5, 0.5, 0.5}, nil)
			if err != nil {
				t.Fatal(err)
			}
			res, _ := mustRun(t, alg, ds, scn, f, 5)
			assertTopK(t, "NC/"+scn.Name+"/"+f.Name(), ds, f, 5, res)
		}
	}
}

// Cheap etc. re-exported for test readability.
const (
	Cheap      = access.Cheap
	Expensive  = access.Expensive
	Impossible = access.Impossible
)

func TestBaselinesMatchOracle(t *testing.T) {
	cases := []struct {
		alg Algorithm
		scn func(m int) access.Scenario
		fs  []score.Func
	}{
		{FA{}, func(m int) access.Scenario { return access.Uniform(m, 1, 1) }, []score.Func{score.Min(), score.Avg(), score.Max()}},
		{TA{}, func(m int) access.Scenario { return access.Uniform(m, 1, 1) }, []score.Func{score.Min(), score.Avg(), score.Max()}},
		{CA{}, func(m int) access.Scenario { return access.MatrixCell(m, Cheap, Expensive, 10) }, []score.Func{score.Min(), score.Avg()}},
		{NRA{}, func(m int) access.Scenario { return access.MatrixCell(m, Cheap, Impossible, 10) }, []score.Func{score.Min(), score.Avg()}},
		{MPro{}, func(m int) access.Scenario { return access.MatrixCell(m, Impossible, Expensive, 10) }, []score.Func{score.Min(), score.Avg()}},
		{Upper{}, func(m int) access.Scenario { return access.MatrixCell(m, Impossible, Expensive, 10) }, []score.Func{score.Min(), score.Avg()}},
		{QuickCombine{}, func(m int) access.Scenario { return access.Uniform(m, 1, 1) }, []score.Func{score.Avg(), score.Product()}},
		{StreamCombine{}, func(m int) access.Scenario { return access.MatrixCell(m, Cheap, Impossible, 10) }, []score.Func{score.Avg()}},
	}
	dists := []data.Distribution{data.Uniform, data.Correlated, data.AntiCorrelated}
	for _, c := range cases {
		for _, dist := range dists {
			for _, m := range []int{2, 3} {
				ds := datatest.MustGenerate(dist, 50, m, 23)
				for _, f := range c.fs {
					for _, k := range []int{1, 5, 12} {
						res, _ := mustRun(t, c.alg, ds, c.scn(m), f, k)
						assertTopK(t, c.alg.Name()+"/"+dist.String()+"/"+f.Name(), ds, f, k, res)
					}
				}
			}
		}
	}
}

func TestKLargerThanN(t *testing.T) {
	ds := datatest.MustGenerate(data.Uniform, 7, 2, 3)
	algs := []Algorithm{FA{}, TA{}, CA{}, NRA{}, MustNCForTest(2), QuickCombine{}}
	for _, alg := range algs {
		res, _ := mustRun(t, alg, ds, access.Uniform(2, 1, 1), score.Avg(), 20)
		assertTopK(t, alg.Name()+"/k>n", ds, score.Avg(), 20, res)
	}
}

// MustNCForTest builds a mid-depth NC instance for m predicates.
func MustNCForTest(m int) Algorithm {
	h := make([]float64, m)
	for i := range h {
		h[i] = 0.5
	}
	alg, err := NewNC(h, nil)
	if err != nil {
		panic(err)
	}
	return alg
}

func TestCapabilityErrors(t *testing.T) {
	ds := datatest.MustGenerate(data.Uniform, 10, 2, 1)
	noRandom := access.MatrixCell(2, Cheap, Impossible, 10)
	for _, alg := range []Algorithm{FA{}, TA{}, CA{}, QuickCombine{}} {
		sess := mustSession(t, ds, noRandom)
		prob, _ := NewProblem(score.Avg(), 3, sess)
		if _, err := alg.Run(prob); err == nil {
			t.Errorf("%s should refuse a no-random scenario", alg.Name())
		}
	}
	probeOnly := access.MatrixCell(2, Impossible, Cheap, 10)
	for _, alg := range []Algorithm{NRA{}, StreamCombine{}} {
		sess := mustSession(t, ds, probeOnly)
		prob, _ := NewProblem(score.Avg(), 3, sess)
		if _, err := alg.Run(prob); err == nil {
			t.Errorf("%s should refuse a probe-only scenario", alg.Name())
		}
	}
}

func TestQuickCombineRefusesMin(t *testing.T) {
	ds := datatest.MustGenerate(data.Uniform, 10, 2, 1)
	sess := mustSession(t, ds, access.Uniform(2, 1, 1))
	prob, _ := NewProblem(score.Min(), 3, sess)
	if _, err := (QuickCombine{}).Run(prob); !errors.Is(err, ErrInapplicable) {
		t.Errorf("Quick-Combine on min: err = %v, want ErrInapplicable", err)
	}
	sess = mustSession(t, ds, access.MatrixCell(2, Cheap, Impossible, 10))
	prob, _ = NewProblem(score.Min(), 3, sess)
	if _, err := (StreamCombine{}).Run(prob); !errors.Is(err, ErrInapplicable) {
		t.Errorf("Stream-Combine on min: err = %v, want ErrInapplicable", err)
	}
}

func TestNewProblemValidation(t *testing.T) {
	ds := datatest.MustGenerate(data.Uniform, 5, 2, 1)
	sess := mustSession(t, ds, access.Uniform(2, 1, 1))
	if _, err := NewProblem(score.Avg(), 0, sess); err == nil {
		t.Error("k=0 should fail")
	}
	if _, err := NewProblem(score.Weighted(1, 2, 3), 2, sess); err == nil {
		t.Error("arity mismatch should fail")
	}
}

func TestSRGValidation(t *testing.T) {
	if _, err := NewSRG(nil, nil); err == nil {
		t.Error("empty H should fail")
	}
	if _, err := NewSRG([]float64{0.5, 1.5}, nil); err == nil {
		t.Error("H out of range should fail")
	}
	if _, err := NewSRG([]float64{0.5, 0.5}, []int{0}); err == nil {
		t.Error("short Omega should fail")
	}
	if _, err := NewSRG([]float64{0.5, 0.5}, []int{0, 0}); err == nil {
		t.Error("non-permutation Omega should fail")
	}
	if _, err := NewSRG([]float64{0.5, 0.5}, []int{1, 0}); err != nil {
		t.Errorf("valid SRG rejected: %v", err)
	}
}

func TestOmegaOrderControlsProbes(t *testing.T) {
	// In a probe-heavy scenario, Omega decides which predicate is probed
	// first. With H = (0,1,1) and Omega = (0,2,1), probes on each object
	// must hit p3 before p2.
	ds := datatest.MustGenerate(data.Uniform, 30, 3, 5)
	scn := access.MatrixCell(3, Impossible, Cheap, 10)
	alg, err := NewNC([]float64{0, 1, 1}, []int{0, 2, 1})
	if err != nil {
		t.Fatal(err)
	}
	_, sess := mustRun(t, alg, ds, scn, score.Min(), 3, access.WithTrace())
	probedP2 := make(map[int]bool)
	for _, rec := range sess.Trace() {
		if rec.Kind != access.RandomAccess {
			continue
		}
		switch rec.Pred {
		case 1:
			if !probedP2[rec.Obj] {
				t.Fatalf("object %d probed on p2 before p3 despite Omega", rec.Obj)
			}
		case 2:
			probedP2[rec.Obj] = true
		}
	}
}

func TestResultHelpers(t *testing.T) {
	res := &Result{Items: []Item{{Obj: 4, Score: 0.9}, {Obj: 1, Score: 0.8}}}
	if got := res.Objects(); len(got) != 2 || got[0] != 4 || got[1] != 1 {
		t.Errorf("Objects = %v", got)
	}
}

func TestKthBest(t *testing.T) {
	items := []Item{{Score: 0.2}, {Score: 0.9}, {Score: 0.5}, {Score: 0.7}}
	if got := kthBest(items, 1); got != 0.9 {
		t.Errorf("kthBest(1) = %g", got)
	}
	if got := kthBest(items, 3); got != 0.5 {
		t.Errorf("kthBest(3) = %g", got)
	}
	if got := kthBest(items, 4); got != 0.2 {
		t.Errorf("kthBest(4) = %g", got)
	}
}

func TestByNameRegistry(t *testing.T) {
	for _, name := range Names() {
		alg, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if alg.Name() != name {
			t.Errorf("ByName(%q).Name() = %q", name, alg.Name())
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown name should fail")
	}
}

func TestNCName(t *testing.T) {
	alg := MustNCForTest(2)
	if alg.Name() == "" {
		t.Error("NC name empty")
	}
	if (MPro{}).Name() != "MPro" || (Upper{}).Name() != "Upper" {
		t.Error("names mismatch")
	}
}
