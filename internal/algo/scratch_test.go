package algo

import (
	"testing"

	"repro/internal/access"
	"repro/internal/data"
	"repro/internal/data/datatest"
	"repro/internal/score"
)

// TestRunScratchMatchesFresh proves scratch reuse is invisible: running NC
// repeatedly through one Scratch yields byte-identical answers and ledgers
// to fresh-state runs, including across k and scoring-function changes.
func TestRunScratchMatchesFresh(t *testing.T) {
	ds := datatest.MustGenerate(data.Correlated, 200, 2, 9)
	scn := access.Uniform(2, 1, 5)
	nc := &NC{Sel: MustNewSRG([]float64{0.4, 0.6}, nil)}
	run := func(sc *Scratch, f score.Func, k int) *Result {
		t.Helper()
		sess, err := access.NewSession(access.DatasetBackend{DS: ds}, scn)
		if err != nil {
			t.Fatal(err)
		}
		p, err := NewProblem(f, k, sess)
		if err != nil {
			t.Fatal(err)
		}
		res, err := nc.RunScratch(p, sc)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	sc := &Scratch{}
	for _, cfg := range []struct {
		f score.Func
		k int
	}{
		{score.Avg(), 5},
		{score.Avg(), 5}, // repeat: warm scratch, same query
		{score.Min(), 3}, // swap function and k through the same scratch
		{score.Avg(), 10},
	} {
		got := run(sc, cfg.f, cfg.k)
		want := run(nil, cfg.f, cfg.k)
		if len(got.Items) != len(want.Items) {
			t.Fatalf("k=%d %s: scratch run returned %d items, fresh %d",
				cfg.k, cfg.f.Name(), len(got.Items), len(want.Items))
		}
		for i := range got.Items {
			if got.Items[i] != want.Items[i] {
				t.Errorf("k=%d %s item %d: scratch %+v fresh %+v",
					cfg.k, cfg.f.Name(), i, got.Items[i], want.Items[i])
			}
		}
		if got.Ledger.TotalCost != want.Ledger.TotalCost {
			t.Errorf("k=%d %s: scratch cost %v, fresh %v",
				cfg.k, cfg.f.Name(), got.Ledger.TotalCost, want.Ledger.TotalCost)
		}
	}
}

// TestRunScratchShapeChange checks a pooled scratch survives moving to a
// dataset of a different size (the table is rebuilt, not corrupted).
func TestRunScratchShapeChange(t *testing.T) {
	sc := &Scratch{}
	nc := &NC{Sel: MustNewSRG([]float64{0.5, 0.5}, nil)}
	for _, n := range []int{50, 200, 20} {
		ds := datatest.MustGenerate(data.Uniform, n, 2, 4)
		sess, err := access.NewSession(access.DatasetBackend{DS: ds}, access.Uniform(2, 1, 1))
		if err != nil {
			t.Fatal(err)
		}
		p, err := NewProblem(score.Avg(), 3, sess)
		if err != nil {
			t.Fatal(err)
		}
		res, err := nc.RunScratch(p, sc)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if len(res.Items) != 3 {
			t.Fatalf("n=%d: got %d items, want 3", n, len(res.Items))
		}
	}
}
