package algo

import (
	"math"

	"repro/internal/access"
	"repro/internal/data"
	"repro/internal/state"
)

// CA is Fagin's Combined Algorithm for the "random access expensive" cells
// of Figure 2. It interleaves NRA-style equal-depth sorted rounds with
// occasional exhaustive probes: after every h sorted rounds — h being the
// random/sorted unit-cost ratio, so probe spending tracks sorted spending
// — it fully evaluates the most promising incomplete seen object (the one
// with the greatest maximal-possible score). It halts as soon as k
// complete objects dominate every other candidate's upper bound.
type CA struct{}

// Name returns "CA".
func (CA) Name() string { return "CA" }

// Run executes CA.
func (CA) Run(p *Problem) (*Result, error) {
	if err := p.Begin(); err != nil {
		return nil, err
	}
	sess := p.Session
	if err := requireAll("CA", sess, true, true); err != nil {
		return nil, err
	}
	tab, err := state.NewTable(sess.N(), sess.M(), p.F)
	if err != nil {
		return nil, err
	}
	preds := roundRobinPreds(sess)
	h := costRatio(sess)

	var scratch []int
	round := 0
	for {
		advanced := false
		for _, i := range preds {
			if sess.SortedExhausted(i) {
				continue
			}
			obj, s, err := sess.SortedNext(i)
			if err != nil {
				return nil, err
			}
			advanced = true
			tab.ObserveSorted(i, obj, s)
		}
		round++
		if round%h == 0 {
			// Probe phase: complete the incomplete seen object with the
			// greatest maximal-possible score.
			best, bestUp := -1, -1.0
			for u := 0; u < tab.N(); u++ {
				if !tab.Seen(u) || tab.Complete(u) {
					continue
				}
				if up := tab.Upper(u); best == -1 || up > bestUp || (up == bestUp && u > best) {
					best, bestUp = u, up
				}
			}
			if best >= 0 {
				scratch = tab.UnknownPreds(best, scratch[:0])
				for _, j := range scratch {
					v, err := sess.Random(j, best)
					if err != nil {
						return nil, err
					}
					tab.ObserveRandom(j, best, v)
				}
			}
		}
		if items, ok := completeHalt(tab, p.K); ok {
			return &Result{Items: items, Ledger: sess.Ledger()}, nil
		}
		if !advanced {
			break // all lists exhausted: everything is complete
		}
	}
	items, _ := completeHalt(tab, min(p.K, tab.SeenCount()))
	return &Result{Items: items, Ledger: sess.Ledger()}, nil
}

// costRatio computes CA's probe period h = max(1, round(avg cr / avg cs)),
// the random/sorted unit-cost ratio averaged across predicates.
func costRatio(sess *access.Session) int {
	var cr, cs float64
	for i := 0; i < sess.M(); i++ {
		pc := sess.Costs(i)
		cs += pc.Sorted.Units()
		cr += pc.Random.Units()
	}
	if cs <= 0 {
		return 1
	}
	h := int(math.Round(cr / cs))
	if h < 1 {
		h = 1
	}
	return h
}

// completeHalt checks whether k complete objects dominate every other
// object's maximal-possible score (Theorem 1's halting condition applied
// to exact-scored candidates only, which is how CA-style algorithms halt).
// When it fires, the ranked answer items are returned.
func completeHalt(tab *state.Table, k int) ([]Item, bool) {
	if k == 0 {
		return nil, true
	}
	type cand struct {
		obj int
		ex  float64
	}
	top := make([]cand, 0, k)
	worse := func(a, b cand) bool { return data.Less(a.ex, a.obj, b.ex, b.obj) }
	for u := 0; u < tab.N(); u++ {
		if !tab.Complete(u) {
			continue
		}
		ex, _ := tab.Exact(u)
		c := cand{obj: u, ex: ex}
		pos := len(top)
		for pos > 0 && worse(top[pos-1], c) {
			pos--
		}
		if pos < k {
			if len(top) < k {
				top = append(top, cand{})
			}
			copy(top[pos+1:], top[pos:len(top)-1])
			top[pos] = c
		}
	}
	if len(top) < k {
		return nil, false
	}
	kth := top[len(top)-1]
	inTop := make(map[int]bool, k)
	for _, c := range top {
		inTop[c.obj] = true
	}
	if !tab.AllSeen() && data.Less(kth.ex, kth.obj, tab.UnseenUpper(), state.UnseenID) {
		return nil, false
	}
	for u := 0; u < tab.N(); u++ {
		if inTop[u] || (!tab.Seen(u) && tab.KnownCount(u) == 0) {
			// Fully-unseen objects are covered by the unseen bound above.
			continue
		}
		if data.Less(kth.ex, kth.obj, tab.Upper(u), u) {
			return nil, false
		}
	}
	items := make([]Item, len(top))
	for i, c := range top {
		items[i] = Item{Obj: c.obj, Score: c.ex, Exact: true}
	}
	return items, true
}
