package algo

import (
	"fmt"
	"strings"
	"testing"
)

// TestRegistryRoundTrip asserts the full ByName contract: every documented
// name resolves, each name yields a distinct concrete type, and unknown
// names fail with a message that echoes the offending input.
func TestRegistryRoundTrip(t *testing.T) {
	types := make(map[string]string, len(Names()))
	for _, name := range Names() {
		alg, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if alg == nil {
			t.Fatalf("ByName(%q) returned a nil algorithm", name)
		}
		if alg.Name() != name {
			t.Errorf("ByName(%q).Name() = %q; the registry must round-trip", name, alg.Name())
		}
		typ := fmt.Sprintf("%T", alg)
		if prev, dup := types[typ]; dup {
			t.Errorf("names %q and %q map to the same type %s", prev, name, typ)
		}
		types[typ] = name
	}
	for _, bogus := range []string{"", "nc", "ta", "NC-Opt", "threshold"} {
		alg, err := ByName(bogus)
		if err == nil {
			t.Fatalf("ByName(%q) = %v, want error", bogus, alg)
		}
		if !strings.Contains(err.Error(), fmt.Sprintf("%q", bogus)) {
			t.Errorf("ByName(%q) error %q does not name the unknown input", bogus, err)
		}
	}
}
