package algo

import (
	"fmt"

	"repro/internal/state"
)

// quickIndicatorDepth is the lookback window (in sorted accesses) of the
// Quick-/Stream-Combine steering indicator, the d of Guentzer et al.
const quickIndicatorDepth = 2

// combineSteer holds the shared steering machinery of Quick-Combine and
// Stream-Combine: pick the next sorted list by the indicator
//
//	Delta_i = dF/dx_i (at the current bounds) * (ell_i d accesses ago - ell_i now)
//
// i.e. steer toward the list whose recent score drop, weighted by the
// function's sensitivity to it, shrinks the threshold fastest. The
// indicator requires partial derivatives; for functions like min the
// paper notes it is inapplicable, and we surface ErrInapplicable.
type combineSteer struct {
	hist [][]float64 // per list: last-seen values, newest last
}

func newCombineSteer(m int) *combineSteer {
	return &combineSteer{hist: make([][]float64, m)}
}

func (c *combineSteer) observe(i int, last float64) {
	h := append(c.hist[i], last)
	if len(h) > quickIndicatorDepth+1 {
		h = h[1:]
	}
	c.hist[i] = h
}

// next picks the list with the greatest indicator among candidates.
// Lists observed fewer than two times get priority (their drop cannot be
// estimated yet), and when every estimated indicator is zero — flat
// score plateaus — the least-advanced list is chosen instead: a steering
// heuristic must never starve a list forever on a stale zero-drop
// estimate, or bounds on the starved predicate stay at their plateau and
// the threshold cannot fall.
func (c *combineSteer) next(tab *state.Table, candidates []int) (int, error) {
	if i, ok := staleness(tab, candidates); ok {
		return i, nil
	}
	bounds := make([]float64, tab.M())
	for i := range bounds {
		bounds[i] = tab.LastSeen(i)
	}
	best, bestDelta := -1, -1.0
	for _, i := range candidates {
		if len(c.hist[i]) < 2 {
			return i, nil // not yet estimable: sample it
		}
		d, ok := tab.Func().Derivative(bounds, i)
		if !ok {
			return 0, fmt.Errorf("%w: %s has no usable partial derivative for the Quick-Combine indicator", ErrInapplicable, tab.Func().Name())
		}
		h := c.hist[i]
		drop := h[0] - h[len(h)-1]
		delta := d * drop
		if delta > bestDelta {
			best, bestDelta = i, delta
		}
	}
	if best == -1 {
		return 0, fmt.Errorf("algo: combine steering found no candidate list")
	}
	if bestDelta <= 0 {
		// All drops flat: advance the shallowest list.
		best = candidates[0]
		for _, i := range candidates[1:] {
			if tab.Depth(i) < tab.Depth(best) {
				best = i
			}
		}
	}
	return best, nil
}

// staleness is the steering family's bounded-unfairness guard: a list's
// drop estimate only refreshes when the list is advanced, so a frozen
// low estimate could starve a list forever on data where drops are
// actually similar (a positive-feedback lock-in). When the depth spread
// across candidate lists exceeds a 2x band (plus slack), the shallowest
// list is advanced to refresh its estimate.
func staleness(tab *state.Table, candidates []int) (int, bool) {
	if len(candidates) < 2 {
		return 0, false
	}
	shallow, deep := candidates[0], candidates[0]
	for _, i := range candidates[1:] {
		if tab.Depth(i) < tab.Depth(shallow) {
			shallow = i
		}
		if tab.Depth(i) > tab.Depth(deep) {
			deep = i
		}
	}
	if tab.Depth(deep) > 2*tab.Depth(shallow)+8 {
		return shallow, true
	}
	return 0, false
}

// QuickCombine is the TA enhancement of Guentzer, Balke and Kiessling:
// exhaustive probing of newly seen objects and TA's threshold stop, but
// sorted accesses are steered by the derivative indicator instead of
// round-robin. It refuses scoring functions without usable derivatives.
type QuickCombine struct{}

// Name returns "Quick-Combine".
func (QuickCombine) Name() string { return "Quick-Combine" }

// Run executes Quick-Combine.
func (QuickCombine) Run(p *Problem) (*Result, error) {
	if err := p.Begin(); err != nil {
		return nil, err
	}
	sess := p.Session
	if err := requireAll("Quick-Combine", sess, true, true); err != nil {
		return nil, err
	}
	tab, err := state.NewTable(sess.N(), sess.M(), p.F)
	if err != nil {
		return nil, err
	}
	steer := newCombineSteer(sess.M())
	var done []Item
	processed := make([]bool, sess.N())
	var scratch []int

	for {
		var candidates []int
		for i := 0; i < sess.M(); i++ {
			if !sess.SortedExhausted(i) {
				candidates = append(candidates, i)
			}
		}
		if len(candidates) == 0 {
			break
		}
		i, err := steer.next(tab, candidates)
		if err != nil {
			return nil, err
		}
		obj, s, err := sess.SortedNext(i)
		if err != nil {
			return nil, err
		}
		tab.ObserveSorted(i, obj, s)
		steer.observe(i, s)
		if !processed[obj] {
			processed[obj] = true
			scratch = tab.UnknownPreds(obj, scratch[:0])
			for _, j := range scratch {
				v, err := sess.Random(j, obj)
				if err != nil {
					return nil, err
				}
				tab.ObserveRandom(j, obj, v)
			}
			exact, _ := tab.Exact(obj)
			done = append(done, Item{Obj: obj, Score: exact, Exact: true})
		}
		if len(done) >= p.K && kthBest(done, p.K) >= tab.UnseenUpper() {
			break
		}
	}
	return &Result{Items: rankItems(done, p.K), Ledger: sess.Ledger()}, nil
}

// StreamCombine is the sorted-access-only sibling of Quick-Combine
// (Guentzer et al.): NRA's bound maintenance and stopping rule with the
// same derivative-steered choice of which list to advance.
type StreamCombine struct{}

// Name returns "Stream-Combine".
func (StreamCombine) Name() string { return "Stream-Combine" }

// Run executes Stream-Combine.
func (StreamCombine) Run(p *Problem) (*Result, error) {
	if err := p.Begin(); err != nil {
		return nil, err
	}
	sess := p.Session
	if err := requireAll("Stream-Combine", sess, true, false); err != nil {
		return nil, err
	}
	tab, err := state.NewTable(sess.N(), sess.M(), p.F)
	if err != nil {
		return nil, err
	}
	steer := newCombineSteer(sess.M())

	for {
		var candidates []int
		for i := 0; i < sess.M(); i++ {
			if !sess.SortedExhausted(i) {
				candidates = append(candidates, i)
			}
		}
		if len(candidates) == 0 {
			break
		}
		i, err := steer.next(tab, candidates)
		if err != nil {
			return nil, err
		}
		obj, s, err := sess.SortedNext(i)
		if err != nil {
			return nil, err
		}
		tab.ObserveSorted(i, obj, s)
		steer.observe(i, s)
		if items, ok := nraHalt(tab, p.K); ok {
			return &Result{Items: items, Ledger: sess.Ledger()}, nil
		}
	}
	items, _ := nraHalt(tab, min(p.K, tab.SeenCount()))
	return &Result{Items: items, Ledger: sess.Ledger()}, nil
}
