package algo

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/access"
	"repro/internal/obs"
	"repro/internal/score"
	"repro/internal/state"
)

// Choice is one candidate access among the necessary choices N_j of an
// unsatisfied scoring task (Definition 2). For RandomAccess the target
// object is the task's object; for SortedAccess the returned object is
// whatever the list yields next.
type Choice struct {
	Kind access.Kind
	Pred int
}

// AccessContext is the read-only view of a middleware access runtime that
// choice construction and selection need: capabilities and current costs,
// sorted-list progress, probe history, and visibility. *access.Session
// implements it; so does the live concurrent executor, which keeps its own
// bookkeeping while issuing real requests.
type AccessContext interface {
	M() int
	Costs(i int) access.PredCost
	SortedExhausted(i int) bool
	Probed(i, u int) bool
	Seen(u int) bool
	NoWildGuesses() bool
}

var _ AccessContext = (*access.Session)(nil)

// Selector decides which necessary choice to perform — the Select routine
// of Framework NC (Figure 6, line 6). Different Selectors generate the
// different concrete algorithms of the NC space; SRG is the paper's
// optimizer-driven instantiation.
type Selector interface {
	Name() string
	// Choose picks one of the (non-empty, legal) choices for the
	// unsatisfied task of object target. target is state.UnseenID for the
	// virtual unseen object, in which case all choices are sorted
	// accesses.
	Choose(t *state.Table, ctx AccessContext, target int, choices []Choice) Choice
}

// NC is Framework NC (Figure 6): it maintains the current top-k objects by
// maximal-possible score, repeatedly finds an unsatisfied scoring task
// among them (Theorem 1 guarantees one exists until the query is
// answerable), constructs the task's necessary choices, and delegates the
// pick to the Selector.
//
// The implementation works incrementally on the single best candidate: if
// the queue's top is complete it is provably the next answer (its exact
// score dominates every other candidate's upper bound), so it is emitted;
// otherwise it is the highest-ranked incomplete member of K_P — exactly
// the task Figure 6's comment suggests choosing.
type NC struct {
	Sel Selector
	// Epsilon > 0 relaxes the query to theta-approximation with
	// theta = 1 + Epsilon (the classic approximate-top-k guarantee of the
	// TA family): every returned object u satisfies
	// (1+Epsilon)*F(u) >= F(v) for every object v ranked after it. The
	// framework then emits a candidate not only when it is complete but
	// also when its own bound interval is tight enough —
	// F-bar(u) <= (1+Epsilon)*F-floor(u) — trading exactness for fewer
	// accesses. Such items carry Exact=false and their final lower bound
	// as Score. Zero means exact semantics.
	Epsilon float64
	// Hooks for instrumentation (may be nil): OnAccess fires after each
	// performed access with the updated table.
	OnAccess func(t *state.Table, rec Choice)
	// Obs, when non-nil, receives one LoopIteration event per scheduling
	// iteration with the candidate queue's size — the K_P working set the
	// observability layer reports as a high-water mark. Access-level
	// events flow from the session's own observer.
	Obs obs.Observer
}

// Name identifies the framework with its selector.
func (nc *NC) Name() string { return "NC/" + nc.Sel.Name() }

// Scratch holds the reusable per-run working state of Framework NC: the
// score-state table, the candidate queue, the emitted bitmap, and the
// necessary-choice buffer. A zero Scratch is ready to use; passing the
// same Scratch to successive RunScratch calls recycles every backing
// array, which removes the dominant per-query allocations. A Scratch is
// owned by one run at a time (not safe for concurrent use); answer Items
// are never pooled — they escape to the caller.
type Scratch struct {
	tab     *state.Table
	q       *state.Queue
	emitted []bool
	choices []Choice
}

// prepare readies the scratch for a run of size n×m, reallocating only on
// first use or a shape change.
func (sc *Scratch) prepare(n, m int, f score.Func, nwg bool) (*state.Table, *state.Queue, []bool, error) {
	if sc.tab == nil || sc.tab.N() != n || sc.tab.M() != m {
		t, err := state.NewTable(n, m, f)
		if err != nil {
			return nil, nil, nil, err
		}
		sc.tab = t
	} else if err := sc.tab.Reset(f); err != nil {
		return nil, nil, nil, err
	}
	if sc.q == nil {
		sc.q = state.NewQueue(sc.tab, nwg)
	} else {
		sc.q.Reset(sc.tab, nwg)
	}
	if cap(sc.emitted) < n {
		sc.emitted = make([]bool, n)
	} else {
		sc.emitted = sc.emitted[:n]
		clear(sc.emitted)
	}
	return sc.tab, sc.q, sc.emitted, nil
}

// Run executes the framework until the top-k is determined.
func (nc *NC) Run(p *Problem) (*Result, error) { return nc.RunScratch(p, nil) }

// RunScratch is Run with caller-provided reusable working state. A nil
// scratch allocates fresh state, making it equivalent to Run.
func (nc *NC) RunScratch(p *Problem, sc *Scratch) (*Result, error) {
	if err := p.Begin(); err != nil {
		return nil, err
	}
	sess := p.Session
	var (
		tab     *state.Table
		q       *state.Queue
		emitted []bool
		err     error
	)
	if sc != nil {
		tab, q, emitted, err = sc.prepare(sess.N(), sess.M(), p.F, sess.NoWildGuesses())
		if err != nil {
			return nil, err
		}
	} else {
		sc = &Scratch{}
		if tab, err = state.NewTable(sess.N(), sess.M(), p.F); err != nil {
			return nil, err
		}
		sc.tab = tab
		q = state.NewQueue(tab, sess.NoWildGuesses())
		emitted = make([]bool, sess.N())
	}

	items := make([]Item, 0, p.K)
	// drain returns the best current answer when the run cannot prove the
	// exact top-k (budget exhausted, or — fault-tolerant sessions only —
	// degradation or a query deadline): the emitted (guaranteed) prefix
	// plus the leading candidates by maximal-possible score, reported with
	// their lower bounds and Exact=false.
	drain := func(degraded []string) *Result {
		for len(items) < p.K {
			e, ok := q.Pop()
			if !ok {
				break
			}
			if e.ID == state.UnseenID {
				continue
			}
			if exact, done := tab.Exact(e.ID); done {
				items = append(items, Item{Obj: e.ID, Score: exact, Exact: true})
				continue
			}
			items = append(items, Item{Obj: e.ID, Score: tab.Lower(e.ID), Exact: false})
		}
		return &Result{Items: items, Ledger: sess.Ledger(), Truncated: true, Degraded: degraded}
	}
	// Consecutive unbilled failures absorbed so far; bounded by the
	// session's failure budget so a pathological source cannot spin the
	// loop forever (each absorbed failure advances a breaker, so in
	// practice circuits open long before the budget runs out).
	consecFail := 0
	failBudget := sess.FailureBudget()
	for len(items) < p.K {
		if nc.Obs != nil {
			nc.Obs.LoopIteration(q.Len())
		}
		top, ok := q.Peek()
		if !ok {
			break // fewer than k objects exist; return all
		}
		if top.ID != state.UnseenID && tab.Complete(top.ID) {
			// Satisfied task at the head: top.Upper is its exact score and
			// dominates every remaining candidate's bound, so it is the
			// next answer (Theorem 1, condition 2, applied incrementally).
			q.Pop()
			emitted[top.ID] = true
			exact, _ := tab.Exact(top.ID)
			items = append(items, Item{Obj: top.ID, Score: exact, Exact: true})
			continue
		}
		if nc.Epsilon > 0 && top.ID != state.UnseenID {
			// Approximate emission: the candidate dominates every
			// remaining bound (it is the queue head), and its own interval
			// is within the theta = 1+Epsilon slack, so for any later v:
			// (1+eps)*F(top) >= (1+eps)*F-floor(top) >= F-bar(top)
			//                >= F-bar(v) >= F(v).
			if lo := tab.Lower(top.ID); top.Upper <= (1+nc.Epsilon)*lo {
				q.Pop()
				emitted[top.ID] = true
				items = append(items, Item{Obj: top.ID, Score: lo, Exact: false})
				continue
			}
		}
		// Unsatisfied task (Theorem 1, condition 1): gather its necessary
		// choices (Definition 2, exported as NecessaryChoices) and let the
		// Selector pick.
		choices := AppendNecessaryChoices(sc.choices[:0], tab, sess, top.ID)
		sc.choices = choices
		if len(choices) == 0 {
			if sess.FaultTolerant() && len(sess.Degraded()) > 0 {
				// Degradation removed every legal choice for this task: the
				// scenario can no longer answer the query exactly. Return
				// the best-effort anytime answer instead of an error — the
				// outage is a scenario change, not a bug.
				if nc.Obs != nil {
					nc.Obs.DegradedReplan("no_legal_plan")
				}
				return drain(append(sess.Degraded(), "no_legal_plan")), nil
			}
			return nil, fmt.Errorf("algo: NC stuck: task for object %d has no legal choices (scenario %q cannot answer the query)", top.ID, sess.Scenario().Name)
		}
		ch := nc.Sel.Choose(tab, sess, top.ID, choices)
		obj, err := performChoice(tab, sess, top.ID, ch)
		switch {
		case err == nil:
			consecFail = 0
		case errors.Is(err, access.ErrBudgetExhausted):
			// Anytime behaviour: the budget cannot cover the framework's
			// chosen access, so return the best current answer.
			return drain(sess.Degraded()), nil
		case errors.Is(err, access.ErrCircuitOpen) || errors.Is(err, access.ErrAccessFailed):
			// Fault-tolerant absorption: nothing was billed, the failure was
			// recorded against the capability's breaker, and the scenario
			// may have degraded — re-derive the choices and re-plan instead
			// of failing the query.
			consecFail++
			if nc.Obs != nil {
				nc.Obs.DegradedReplan(replanReason(err))
			}
			if consecFail > failBudget {
				return drain(append(sess.Degraded(), "failure_budget_exhausted")), nil
			}
			continue
		case sess.FaultTolerant() && sess.Err() != nil:
			// The query's own deadline (or cancellation) fired mid-run:
			// degrade to the best current answer, never hang or lose the
			// work already paid for.
			return drain(append(sess.Degraded(), deadlineReason(sess.Err()))), nil
		default:
			return nil, err
		}
		if err == nil && ch.Kind == access.SortedAccess && !emitted[obj] && !q.Contains(obj) {
			q.Add(obj)
		}
		if nc.OnAccess != nil {
			nc.OnAccess(tab, ch)
		}
	}
	return &Result{Items: items, Ledger: sess.Ledger()}, nil
}

// replanReason labels why the framework re-planned around a failure.
func replanReason(err error) string {
	if errors.Is(err, access.ErrCircuitOpen) {
		return "circuit_open"
	}
	return "source_failure"
}

// deadlineReason labels a query-level context failure.
func deadlineReason(err error) string {
	if errors.Is(err, context.Canceled) {
		return "query_cancelled"
	}
	return "query_deadline"
}

// NecessaryChoices constructs N_j for the unsatisfied task of the given
// object (Definition 2): every supported access that can return exact or
// bounding scores about the object's undetermined predicates. For the
// virtual unseen object only sorted accesses apply (Figure 10).
func NecessaryChoices(tab *state.Table, sess AccessContext, id int) []Choice {
	return AppendNecessaryChoices(nil, tab, sess, id)
}

// AppendNecessaryChoices is NecessaryChoices writing into a caller-owned
// buffer: it appends the task's choices to dst and returns it. Hot loops
// pass a recycled slice to keep choice construction allocation-free.
//
//topklint:hotpath
func AppendNecessaryChoices(dst []Choice, tab *state.Table, sess AccessContext, id int) []Choice {
	out := dst
	if id == state.UnseenID {
		for i := 0; i < sess.M(); i++ {
			if sess.Costs(i).SortedOK && !sess.SortedExhausted(i) {
				out = append(out, Choice{Kind: access.SortedAccess, Pred: i})
			}
		}
		return out
	}
	for i := 0; i < sess.M(); i++ {
		if tab.Known(id, i) {
			continue
		}
		pc := sess.Costs(i)
		if pc.SortedOK && !sess.SortedExhausted(i) {
			out = append(out, Choice{Kind: access.SortedAccess, Pred: i})
		}
		if pc.RandomOK && !sess.Probed(i, id) && (!sess.NoWildGuesses() || sess.Seen(id)) {
			out = append(out, Choice{Kind: access.RandomAccess, Pred: i})
		}
	}
	return out
}

// performChoice executes the chosen access against the session and feeds
// the observation into the table. For a sorted access it returns the
// object the list yielded (the caller decides whether it (re-)enters the
// candidate queue); for a random access it returns the target.
//
//topklint:hotpath
func performChoice(tab *state.Table, sess *access.Session, target int, ch Choice) (int, error) {
	switch ch.Kind {
	case access.SortedAccess:
		obj, s, err := sess.SortedNext(ch.Pred)
		if err != nil {
			return 0, err
		}
		tab.ObserveSorted(ch.Pred, obj, s)
		return obj, nil
	case access.RandomAccess:
		s, err := sess.Random(ch.Pred, target)
		if err != nil {
			return 0, err
		}
		tab.ObserveRandom(ch.Pred, target, s)
		return target, nil
	default:
		return 0, fmt.Errorf("algo: unknown access kind %v", ch.Kind)
	}
}
