package algo

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/access"
	"repro/internal/obs"
	"repro/internal/score"
	"repro/internal/state"
)

// Choice is one candidate access among the necessary choices N_j of an
// unsatisfied scoring task (Definition 2). For RandomAccess the target
// object is the task's object; for SortedAccess the returned object is
// whatever the list yields next.
type Choice struct {
	Kind access.Kind
	Pred int
}

// AccessContext is the read-only view of a middleware access runtime that
// choice construction and selection need: capabilities and current costs,
// sorted-list progress, probe history, and visibility. *access.Session
// implements it; so does the live concurrent executor, which keeps its own
// bookkeeping while issuing real requests.
type AccessContext interface {
	M() int
	Costs(i int) access.PredCost
	SortedExhausted(i int) bool
	Probed(i, u int) bool
	Seen(u int) bool
	NoWildGuesses() bool
}

var _ AccessContext = (*access.Session)(nil)

// AccessObserver receives every performed access with the updated table
// and the observed result — the checkpoint hook of the adaptive layer
// (internal/adapt). One implementation covers all three executors: NC
// fires it from the cursor loop, MPro's cursors are NC cursors, and
// TACursor fires it from its sorted/probe rounds. Implementations must be
// allocation-free: the hook sits on the access hot path.
type AccessObserver interface {
	// ObserveAccess fires after a performed access: ch is what was chosen,
	// obj the object observed (the stream's next object for sorted access,
	// the probe target for random access), score its observed value.
	ObserveAccess(t *state.Table, ch Choice, obj int, score float64)
}

// Selector decides which necessary choice to perform — the Select routine
// of Framework NC (Figure 6, line 6). Different Selectors generate the
// different concrete algorithms of the NC space; SRG is the paper's
// optimizer-driven instantiation.
type Selector interface {
	Name() string
	// Choose picks one of the (non-empty, legal) choices for the
	// unsatisfied task of object target. target is state.UnseenID for the
	// virtual unseen object, in which case all choices are sorted
	// accesses.
	Choose(t *state.Table, ctx AccessContext, target int, choices []Choice) Choice
}

// NC is Framework NC (Figure 6): it maintains the current top-k objects by
// maximal-possible score, repeatedly finds an unsatisfied scoring task
// among them (Theorem 1 guarantees one exists until the query is
// answerable), constructs the task's necessary choices, and delegates the
// pick to the Selector.
//
// The implementation works incrementally on the single best candidate: if
// the queue's top is complete it is provably the next answer (its exact
// score dominates every other candidate's upper bound), so it is emitted;
// otherwise it is the highest-ranked incomplete member of K_P — exactly
// the task Figure 6's comment suggests choosing.
type NC struct {
	Sel Selector
	// Epsilon > 0 relaxes the query to theta-approximation with
	// theta = 1 + Epsilon (the classic approximate-top-k guarantee of the
	// TA family): every returned object u satisfies
	// (1+Epsilon)*F(u) >= F(v) for every object v ranked after it. The
	// framework then emits a candidate not only when it is complete but
	// also when its own bound interval is tight enough —
	// F-bar(u) <= (1+Epsilon)*F-floor(u) — trading exactness for fewer
	// accesses. Such items carry Exact=false and their final lower bound
	// as Score. Zero means exact semantics.
	Epsilon float64
	// Hooks for instrumentation (may be nil): OnAccess fires after each
	// performed access with the updated table.
	OnAccess func(t *state.Table, rec Choice)
	// Monitor is the adaptive layer's checkpoint hook: unlike OnAccess it
	// also receives the access's observed (object, score), which the
	// divergence monitor needs to track random-access score means. Fired
	// after OnAccess on every performed access; read live like Sel, so it
	// may be attached to a suspended cursor between pages.
	Monitor AccessObserver
	// Obs, when non-nil, receives one LoopIteration event per scheduling
	// iteration with the candidate queue's size — the K_P working set the
	// observability layer reports as a high-water mark. Access-level
	// events flow from the session's own observer.
	Obs obs.Observer
}

// Name identifies the framework with its selector.
func (nc *NC) Name() string { return "NC/" + nc.Sel.Name() }

// Scratch holds the reusable per-run working state of Framework NC: the
// score-state table, the candidate queue, the emitted bitmap, and the
// necessary-choice buffer. A zero Scratch is ready to use; passing the
// same Scratch to successive RunScratch calls recycles every backing
// array, which removes the dominant per-query allocations. A Scratch is
// owned by one run at a time (not safe for concurrent use); answer Items
// are never pooled — they escape to the caller.
type Scratch struct {
	tab     *state.Table
	q       *state.Queue
	emitted []bool
	choices []Choice
	// cur is the suspended-execution view of this scratch: NC.Open hands
	// out &sc.cur, so opening a cursor on pooled scratch allocates nothing
	// and repooling the scratch reclaims the cursor with it.
	cur Cursor
}

// prepare readies the scratch for a run of size n×m, reallocating only on
// first use or a shape change.
func (sc *Scratch) prepare(n, m int, f score.Func, nwg bool) (*state.Table, *state.Queue, []bool, error) {
	if sc.tab == nil || sc.tab.N() != n || sc.tab.M() != m {
		t, err := state.NewTable(n, m, f)
		if err != nil {
			return nil, nil, nil, err
		}
		sc.tab = t
	} else if err := sc.tab.Reset(f); err != nil {
		return nil, nil, nil, err
	}
	if sc.q == nil {
		sc.q = state.NewQueue(sc.tab, nwg)
	} else {
		sc.q.Reset(sc.tab, nwg)
	}
	if cap(sc.emitted) < n {
		sc.emitted = make([]bool, n)
	} else {
		sc.emitted = sc.emitted[:n]
		clear(sc.emitted)
	}
	return sc.tab, sc.q, sc.emitted, nil
}

// Run executes the framework until the top-k is determined.
func (nc *NC) Run(p *Problem) (*Result, error) { return nc.RunScratch(p, nil) }

// RunScratch is Run with caller-provided reusable working state. A nil
// scratch allocates fresh state, making it equivalent to Run. It is
// implemented as a single full page of the resumable cursor, which makes
// the deepening contract hold by construction: Open(k).Next(d1)...Next(dn)
// performs the same accesses and emits the same answers as one
// RunScratch with K = d1+...+dn.
func (nc *NC) RunScratch(p *Problem, sc *Scratch) (*Result, error) {
	cur, err := nc.Open(p, sc)
	if err != nil {
		return nil, err
	}
	return cur.Next(p.K)
}

// replanReason labels why the framework re-planned around a failure.
func replanReason(err error) string {
	if errors.Is(err, access.ErrCircuitOpen) {
		return "circuit_open"
	}
	return "source_failure"
}

// deadlineReason labels a query-level context failure.
func deadlineReason(err error) string {
	if errors.Is(err, context.Canceled) {
		return "query_cancelled"
	}
	return "query_deadline"
}

// NecessaryChoices constructs N_j for the unsatisfied task of the given
// object (Definition 2): every supported access that can return exact or
// bounding scores about the object's undetermined predicates. For the
// virtual unseen object only sorted accesses apply (Figure 10).
func NecessaryChoices(tab *state.Table, sess AccessContext, id int) []Choice {
	return AppendNecessaryChoices(nil, tab, sess, id)
}

// AppendNecessaryChoices is NecessaryChoices writing into a caller-owned
// buffer: it appends the task's choices to dst and returns it. Hot loops
// pass a recycled slice to keep choice construction allocation-free.
//
//topklint:hotpath
func AppendNecessaryChoices(dst []Choice, tab *state.Table, sess AccessContext, id int) []Choice {
	out := dst
	if id == state.UnseenID {
		for i := 0; i < sess.M(); i++ {
			if sess.Costs(i).SortedOK && !sess.SortedExhausted(i) {
				out = append(out, Choice{Kind: access.SortedAccess, Pred: i})
			}
		}
		return out
	}
	for i := 0; i < sess.M(); i++ {
		if tab.Known(id, i) {
			continue
		}
		pc := sess.Costs(i)
		if pc.SortedOK && !sess.SortedExhausted(i) {
			out = append(out, Choice{Kind: access.SortedAccess, Pred: i})
		}
		if pc.RandomOK && !sess.Probed(i, id) && (!sess.NoWildGuesses() || sess.Seen(id)) {
			out = append(out, Choice{Kind: access.RandomAccess, Pred: i})
		}
	}
	return out
}

// performChoice executes the chosen access against the session and feeds
// the observation into the table. For a sorted access it returns the
// object the list yielded (the caller decides whether it (re-)enters the
// candidate queue); for a random access it returns the target.
//
//topklint:hotpath
func performChoice(tab *state.Table, sess *access.Session, target int, ch Choice) (int, float64, error) {
	switch ch.Kind {
	case access.SortedAccess:
		obj, s, err := sess.SortedNext(ch.Pred)
		if err != nil {
			return 0, 0, err
		}
		tab.ObserveSorted(ch.Pred, obj, s)
		return obj, s, nil
	case access.RandomAccess:
		s, err := sess.Random(ch.Pred, target)
		if err != nil {
			return 0, 0, err
		}
		tab.ObserveRandom(ch.Pred, target, s)
		return target, s, nil
	default:
		return 0, 0, fmt.Errorf("algo: unknown access kind %v", ch.Kind)
	}
}
