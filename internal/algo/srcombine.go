package algo

import (
	"repro/internal/state"
)

// SRCombine is the last member of the paper's Figure 2 taxonomy (Balke et
// al.), listed there next to CA in the "random access expensive" row: a
// CA-style algorithm enhanced with the Combine family's runtime steering.
// Like CA it interleaves sorted rounds with occasional exhaustive probes
// of the most promising incomplete object (probe spending paced by the
// random/sorted cost ratio), but instead of equal-depth round-robin it
// advances the single list with the greatest derivative-weighted recent
// score drop per unit cost — Quick-Combine's indicator applied to CA's
// schedule. It halts when k complete objects dominate every other
// candidate's bound. Like its siblings it depends on partial derivatives
// and therefore refuses scoring functions such as min (ErrInapplicable).
type SRCombine struct{}

// Name returns "SR-Combine".
func (SRCombine) Name() string { return "SR-Combine" }

// Run executes SR-Combine.
func (SRCombine) Run(p *Problem) (*Result, error) {
	if err := p.Begin(); err != nil {
		return nil, err
	}
	sess := p.Session
	if err := requireAll("SR-Combine", sess, true, true); err != nil {
		return nil, err
	}
	tab, err := state.NewTable(sess.N(), sess.M(), p.F)
	if err != nil {
		return nil, err
	}
	steer := newCombineSteer(sess.M())
	bounds := make([]float64, sess.M())
	var scratch []int
	// Probe pacing matches CA's: one exhaustive probe phase per h rounds
	// of sorted work, a "round" being one access per list.
	period := costRatio(sess) * sess.M()
	sortedSince := 0

	for {
		if items, ok := completeHalt(tab, p.K); ok {
			return &Result{Items: items, Ledger: sess.Ledger()}, nil
		}
		if sortedSince >= period {
			// Probe phase (CA's policy): complete the incomplete seen
			// object with the greatest maximal-possible score.
			sortedSince = 0
			best, bestUp := -1, -1.0
			for u := 0; u < tab.N(); u++ {
				if !tab.Seen(u) || tab.Complete(u) {
					continue
				}
				if up := tab.Upper(u); best == -1 || up > bestUp || (up == bestUp && u > best) {
					best, bestUp = u, up
				}
			}
			if best >= 0 {
				scratch = tab.UnknownPreds(best, scratch[:0])
				for _, j := range scratch {
					v, err := sess.Random(j, best)
					if err != nil {
						return nil, err
					}
					tab.ObserveRandom(j, best, v)
				}
				continue
			}
		}
		// Sorted phase: the steered choice of which list to advance.
		var candidates []int
		for i := 0; i < sess.M(); i++ {
			if !sess.SortedExhausted(i) {
				candidates = append(candidates, i)
			}
		}
		if len(candidates) == 0 {
			// Lists drained without halting (k close to n): force probes
			// until the halting test succeeds or nothing is incomplete.
			progressed := false
			for u := 0; u < tab.N(); u++ {
				if tab.Complete(u) {
					continue
				}
				scratch = tab.UnknownPreds(u, scratch[:0])
				for _, j := range scratch {
					v, err := sess.Random(j, u)
					if err != nil {
						return nil, err
					}
					tab.ObserveRandom(j, u, v)
				}
				progressed = true
				break
			}
			if !progressed {
				items, _ := completeHalt(tab, min(p.K, tab.N()))
				return &Result{Items: items, Ledger: sess.Ledger()}, nil
			}
			continue
		}
		for i := range bounds {
			bounds[i] = tab.LastSeen(i)
		}
		next, bestGain := -1, -1.0
		if i, ok := staleness(tab, candidates); ok {
			next, bestGain = i, 1 // refresh a starved list's estimate
		} else {
			for _, i := range candidates {
				if len(steer.hist[i]) < 2 {
					next, bestGain = i, 1 // drop not estimable yet: sample it
					break
				}
				d, ok := tab.Func().Derivative(bounds, i)
				if !ok {
					return nil, inapplicableDerivative(tab)
				}
				hist := steer.hist[i]
				gain := d * (hist[0] - hist[len(hist)-1]) / sess.Costs(i).Sorted.Units()
				if gain > bestGain {
					next, bestGain = i, gain
				}
			}
		}
		if bestGain <= 0 {
			// Flat drops everywhere: advance the shallowest list rather
			// than starving one on a stale zero estimate.
			next = candidates[0]
			for _, i := range candidates[1:] {
				if tab.Depth(i) < tab.Depth(next) {
					next = i
				}
			}
		}
		obj, s, err := sess.SortedNext(next)
		if err != nil {
			return nil, err
		}
		tab.ObserveSorted(next, obj, s)
		steer.observe(next, s)
		sortedSince++
	}
}

func inapplicableDerivative(tab *state.Table) error {
	return &inapplicableError{fn: tab.Func().Name()}
}

// inapplicableError wraps ErrInapplicable with the offending function.
type inapplicableError struct{ fn string }

func (e *inapplicableError) Error() string {
	return "algo: " + e.fn + " has no usable partial derivative for the Combine indicator: " + ErrInapplicable.Error()
}

func (e *inapplicableError) Unwrap() error { return ErrInapplicable }
