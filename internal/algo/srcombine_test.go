package algo

import (
	"errors"
	"testing"

	"repro/internal/access"
	"repro/internal/data"
	"repro/internal/data/datatest"
	"repro/internal/score"
)

func TestSRCombineMatchesOracle(t *testing.T) {
	for _, dist := range []data.Distribution{data.Uniform, data.AntiCorrelated} {
		ds := datatest.MustGenerate(dist, 60, 3, 41)
		for _, scn := range []access.Scenario{
			access.Uniform(3, 1, 1),
			access.MatrixCell(3, access.Cheap, access.Expensive, 10),
		} {
			for _, k := range []int{1, 5, 15} {
				res, _ := mustRun(t, SRCombine{}, ds, scn, score.Avg(), k)
				assertTopK(t, "SR-Combine/"+dist.String(), ds, score.Avg(), k, res)
			}
		}
	}
}

func TestSRCombineRefusesMin(t *testing.T) {
	ds := datatest.MustGenerate(data.Uniform, 20, 2, 1)
	sess := mustSession(t, ds, access.Uniform(2, 1, 1))
	prob, _ := NewProblem(score.Min(), 3, sess)
	if _, err := (SRCombine{}).Run(prob); !errors.Is(err, ErrInapplicable) {
		t.Errorf("SR-Combine on min: err = %v, want ErrInapplicable", err)
	}
}

func TestSRCombineRequiresBothAccessTypes(t *testing.T) {
	ds := datatest.MustGenerate(data.Uniform, 20, 2, 1)
	sess := mustSession(t, ds, access.MatrixCell(2, access.Cheap, access.Impossible, 10))
	prob, _ := NewProblem(score.Avg(), 3, sess)
	if _, err := (SRCombine{}).Run(prob); err == nil {
		t.Error("SR-Combine should refuse a no-random scenario")
	}
}

func TestSRCombineAdaptsToExpensiveProbes(t *testing.T) {
	// Under expensive probes, SR-Combine should do far fewer random
	// accesses than Quick-Combine's exhaustive probing.
	ds := datatest.MustGenerate(data.Uniform, 300, 2, 42)
	scn := access.MatrixCell(2, access.Cheap, access.Expensive, 25)
	sr, srSess := mustRun(t, SRCombine{}, ds, scn, score.Avg(), 10)
	qc, qcSess := mustRun(t, QuickCombine{}, ds, scn, score.Avg(), 10)
	assertTopK(t, "SR-Combine", ds, score.Avg(), 10, sr)
	assertTopK(t, "Quick-Combine", ds, score.Avg(), 10, qc)
	srProbes := sum(srSess.Ledger().RandomCounts)
	qcProbes := sum(qcSess.Ledger().RandomCounts)
	if srProbes >= qcProbes {
		t.Errorf("SR-Combine probes %d should be below Quick-Combine's %d", srProbes, qcProbes)
	}
	if sr.Cost() >= qc.Cost() {
		t.Errorf("SR-Combine cost %v should beat Quick-Combine %v here", sr.Cost(), qc.Cost())
	}
}

func TestSRCombineKLargerThanN(t *testing.T) {
	ds := datatest.MustGenerate(data.Uniform, 8, 2, 3)
	res, _ := mustRun(t, SRCombine{}, ds, access.Uniform(2, 1, 1), score.Avg(), 30)
	assertTopK(t, "SR-Combine/k>n", ds, score.Avg(), 30, res)
}

func sum(xs []int) int {
	t := 0
	for _, x := range xs {
		t += x
	}
	return t
}
