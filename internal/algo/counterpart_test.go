package algo

import (
	"math"
	"testing"

	"repro/internal/access"
	"repro/internal/data"
	"repro/internal/data/datatest"
	"repro/internal/score"
)

// traceOf runs an algorithm with tracing and returns the dataset-verified
// trace plus the result.
func traceOf(t *testing.T, alg Algorithm, ds *data.Dataset, scn access.Scenario, f score.Func, k int) ([]access.Record, *Result) {
	t.Helper()
	res, sess := mustRun(t, alg, ds, scn, f, k, access.WithTrace())
	return sess.Trace(), res
}

// TestSRInclusionProperty is the paper's empirical SR-inclusion check
// (Section 7.1): for traces produced by a spectrum of algorithms, the
// SR-counterpart (all sorted accesses first) is legal under
// no-wild-guesses, costs exactly the same, and still gathers sufficient
// information to answer the query per Theorem 1.
func TestSRInclusionProperty(t *testing.T) {
	algs := []Algorithm{
		TA{}, FA{}, CA{},
		MustNCForTest(2),
		mustNC(t, []float64{0.2, 0.9}, []int{1, 0}),
	}
	for seed := int64(0); seed < 8; seed++ {
		ds := datatest.MustGenerate(data.Uniform, 60, 2, seed)
		for _, alg := range algs {
			for _, f := range []score.Func{score.Min(), score.Avg()} {
				k := int(seed%5) + 1
				trace, res := traceOf(t, alg, ds, access.Uniform(2, 1, 1), f, k)
				sr := SRCounterpart(trace)
				if len(sr) != len(trace) {
					t.Fatalf("%s: counterpart changed access count", alg.Name())
				}
				// Same multiset => same cost under Eq. 1. Verify by
				// counting kinds per predicate.
				if c1, c2 := countKinds(trace), countKinds(sr); c1 != c2 {
					t.Fatalf("%s: counterpart changed access multiset: %v vs %v", alg.Name(), c1, c2)
				}
				tab, err := ReplayTrace(ds, f, sr, true)
				if err != nil {
					t.Fatalf("%s seed %d: SR-counterpart illegal: %v", alg.Name(), seed, err)
				}
				items, ok := Sufficient(tab, k)
				if !ok {
					t.Fatalf("%s seed %d %s k=%d: SR-counterpart insufficient", alg.Name(), seed, f.Name(), k)
				}
				// And it determines the same answer the original found.
				for i := range items {
					truth := f.Eval(ds.Scores(res.Items[i].Obj))
					if math.Abs(items[i].Score-truth) > 1e-9 {
						t.Fatalf("%s: counterpart answer diverges at rank %d", alg.Name(), i)
					}
				}
			}
		}
	}
}

func countKinds(trace []access.Record) [2][8]int {
	var out [2][8]int
	for _, r := range trace {
		out[int(r.Kind)][r.Pred]++
	}
	return out
}

func mustNC(t *testing.T, h []float64, omega []int) Algorithm {
	t.Helper()
	alg, err := NewNC(h, omega)
	if err != nil {
		t.Fatal(err)
	}
	return alg
}

func TestReplayTraceRejectsIllegal(t *testing.T) {
	ds := fig3()
	// Wild guess: probe before any sorted access.
	bad := []access.Record{{Kind: access.RandomAccess, Pred: 0, Obj: 1, Score: 0.65}}
	if _, err := ReplayTrace(ds, score.Min(), bad, true); err == nil {
		t.Error("wild guess should fail replay")
	}
	if _, err := ReplayTrace(ds, score.Min(), bad, false); err != nil {
		t.Errorf("without NWG the probe is legal: %v", err)
	}
	// Repeated probe.
	dup := []access.Record{
		{Kind: access.SortedAccess, Pred: 0, Obj: 2, Score: 0.7},
		{Kind: access.RandomAccess, Pred: 1, Obj: 2, Score: 0.9},
		{Kind: access.RandomAccess, Pred: 1, Obj: 2, Score: 0.9},
	}
	if _, err := ReplayTrace(ds, score.Min(), dup, true); err == nil {
		t.Error("repeated probe should fail replay")
	}
	// Sorted record inconsistent with the list order.
	wrong := []access.Record{{Kind: access.SortedAccess, Pred: 0, Obj: 0, Score: 0.6}}
	if _, err := ReplayTrace(ds, score.Min(), wrong, true); err == nil {
		t.Error("out-of-order sorted access should fail replay")
	}
	// Probe score inconsistent with the dataset.
	lie := []access.Record{
		{Kind: access.SortedAccess, Pred: 0, Obj: 2, Score: 0.7},
		{Kind: access.RandomAccess, Pred: 1, Obj: 2, Score: 0.123},
	}
	if _, err := ReplayTrace(ds, score.Min(), lie, true); err == nil {
		t.Error("mismatched probe score should fail replay")
	}
}

func TestSufficientDetectsInsufficiency(t *testing.T) {
	ds := fig3()
	// Only one sorted access: nothing is complete, nothing is provable.
	partial := []access.Record{{Kind: access.SortedAccess, Pred: 0, Obj: 2, Score: 0.7}}
	tab, err := ReplayTrace(ds, score.Min(), partial, true)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := Sufficient(tab, 1); ok {
		t.Error("one access cannot suffice for top-1")
	}
	// The Example 3 trace (all scores of all objects) suffices for any k.
	full := []access.Record{
		{Kind: access.SortedAccess, Pred: 0, Obj: 2, Score: 0.7},
		{Kind: access.RandomAccess, Pred: 1, Obj: 2, Score: 0.9},
		{Kind: access.SortedAccess, Pred: 0, Obj: 1, Score: 0.65},
		{Kind: access.RandomAccess, Pred: 1, Obj: 1, Score: 0.8},
		{Kind: access.SortedAccess, Pred: 0, Obj: 0, Score: 0.6},
		{Kind: access.RandomAccess, Pred: 1, Obj: 0, Score: 0.8},
	}
	tab, err = ReplayTrace(ds, score.Min(), full, true)
	if err != nil {
		t.Fatal(err)
	}
	items, ok := Sufficient(tab, 3)
	if !ok || len(items) != 3 || items[0].Obj != 2 {
		t.Errorf("full trace should suffice: %v %v", items, ok)
	}
	// k larger than n clamps.
	if items, ok := Sufficient(tab, 10); !ok || len(items) != 3 {
		t.Errorf("k>n should clamp: %v %v", items, ok)
	}
}

// TestApproximateNC verifies the theta-approximation guarantee and its
// cost benefit: every returned object u must satisfy
// (1+eps)*F(u) >= F(v) for every non-returned v, and the run must not
// cost more than the exact one.
func TestApproximateNC(t *testing.T) {
	ds := datatest.MustGenerate(data.Uniform, 400, 2, 33)
	scn := access.Uniform(2, 1, 10)
	f := score.Avg()
	k := 10

	exactAlg := mustNC(t, []float64{0.5, 0.5}, nil)
	exactRes, _ := mustRun(t, exactAlg, ds, scn, f, k)

	for _, eps := range []float64{0.05, 0.2, 0.5} {
		sel := MustNewSRG([]float64{0.5, 0.5}, nil)
		approx := &NC{Sel: sel, Epsilon: eps}
		res, _ := mustRun(t, approx, ds, scn, f, k)
		if len(res.Items) != k {
			t.Fatalf("eps=%g: returned %d items", eps, len(res.Items))
		}
		returned := make(map[int]bool, k)
		minTruth := math.Inf(1)
		for _, it := range res.Items {
			returned[it.Obj] = true
			truth := f.Eval(ds.Scores(it.Obj))
			if truth < minTruth {
				minTruth = truth
			}
			// Reported score never overstates the truth.
			if it.Score > truth+1e-9 {
				t.Fatalf("eps=%g: reported %g above truth %g", eps, it.Score, truth)
			}
		}
		for u := 0; u < ds.N(); u++ {
			if returned[u] {
				continue
			}
			if truth := f.Eval(ds.Scores(u)); (1+eps)*minTruth < truth-1e-9 {
				t.Fatalf("eps=%g: guarantee violated: returned min %g vs outside %g", eps, minTruth, truth)
			}
		}
		if res.Cost() > exactRes.Cost() {
			t.Errorf("eps=%g: approximate run cost %v exceeds exact %v", eps, res.Cost(), exactRes.Cost())
		}
	}
}

func TestApproximateCostDecreasesWithEpsilon(t *testing.T) {
	// Sorted-only access is where approximation bites: bound intervals
	// tighten gradually from both sides, so a theta slack lets the run
	// halt well before objects are fully resolved.
	ds := datatest.MustGenerate(data.Uniform, 600, 3, 44)
	scn := access.MatrixCell(3, access.Cheap, access.Impossible, 10)
	cost := func(eps float64) access.Cost {
		approx := &NC{Sel: MustNewSRG([]float64{0, 0, 0}, nil), Epsilon: eps}
		res, _ := mustRun(t, approx, ds, scn, score.Avg(), 10)
		return res.Cost()
	}
	c0, c2, c5 := cost(0), cost(0.2), cost(0.5)
	if !(c5 <= c2 && c2 <= c0) {
		t.Errorf("costs should be monotone in epsilon: %v, %v, %v", c0, c2, c5)
	}
	if c5 >= c0 {
		t.Errorf("eps=0.5 should strictly save over exact: %v vs %v", c5, c0)
	}
}
