package algo

import (
	"errors"
	"math"
	"reflect"
	"testing"

	"repro/internal/access"
	"repro/internal/data"
	"repro/internal/data/datatest"
	"repro/internal/score"
)

func openCursor(t *testing.T, ds *data.Dataset, scn access.Scenario, f score.Func, eps float64, opts ...access.Option) *Cursor {
	t.Helper()
	sess := mustSession(t, ds, scn, opts...)
	prob, err := NewProblem(f, 1, sess)
	if err != nil {
		t.Fatal(err)
	}
	nc := &NC{Sel: MustNewSRG(midDepths(ds.M()), nil), Epsilon: eps}
	cur, err := nc.Open(prob, nil)
	if err != nil {
		t.Fatal(err)
	}
	return cur
}

func midDepths(m int) []float64 {
	h := make([]float64, m)
	for i := range h {
		h[i] = 0.5
	}
	return h
}

func TestCursorMatchesFullRanking(t *testing.T) {
	ds := datatest.MustGenerate(data.Uniform, 60, 2, 71)
	f := score.Avg()
	cur := openCursor(t, ds, access.Uniform(2, 1, 1), f, 0)
	oracle := ds.TopK(f.Eval, ds.N())
	for i, want := range oracle {
		page, err := cur.Next(1)
		if err != nil {
			t.Fatalf("rank %d: %v", i, err)
		}
		if len(page.Items) != 1 {
			t.Fatalf("rank %d: page of %d items", i, len(page.Items))
		}
		it := page.Items[0]
		if math.Abs(it.Score-want.Score) > 1e-9 {
			t.Fatalf("rank %d: got %g want %g", i, it.Score, want.Score)
		}
		if !it.Exact {
			t.Fatalf("rank %d not exact", i)
		}
	}
	page, err := cur.Next(1)
	if err != nil || len(page.Items) != 0 {
		t.Errorf("drained cursor should return an empty page, got %d items, %v", len(page.Items), err)
	}
	if !cur.Exhausted() {
		t.Error("cursor should report Exhausted after emitting every object")
	}
	// Exhaustion is sticky and access-free.
	before := cur.Ledger().TotalAccesses()
	if page, err = cur.Next(3); err != nil || len(page.Items) != 0 {
		t.Errorf("exhausted cursor page: %d items, %v", len(page.Items), err)
	}
	if cur.Ledger().TotalAccesses() != before {
		t.Error("exhausted Next performed accesses")
	}
}

func TestCursorIncrementalCostsNoMoreThanOneShot(t *testing.T) {
	ds := datatest.MustGenerate(data.Gaussian, 300, 2, 72)
	f := score.Min()
	scn := access.Uniform(2, 1, 3)

	// One-shot top-10 via NC.Run.
	alg, _ := NewNC(midDepths(2), nil)
	oneShot, _ := mustRun(t, alg, ds, scn, f, 10)

	// Paged: 5 now, 5 later — same answers, same total cost and ledger
	// (state is reused, nothing re-paid).
	cur := openCursor(t, ds, scn, f, 0)
	first, err := cur.Next(5)
	if err != nil {
		t.Fatal(err)
	}
	costAfter5 := first.Ledger.TotalCost
	second, err := cur.Next(5)
	if err != nil {
		t.Fatal(err)
	}
	got := append(append([]Item(nil), first.Items...), second.Items...)
	if len(got) != 10 {
		t.Fatalf("paged %d+%d items", len(first.Items), len(second.Items))
	}
	if !reflect.DeepEqual(got, oneShot.Items) {
		t.Fatalf("paged items diverge from one-shot:\n%v\n%v", got, oneShot.Items)
	}
	if !reflect.DeepEqual(second.Ledger, oneShot.Ledger) {
		t.Errorf("paged ledger diverges from one-shot:\n%+v\n%+v", second.Ledger, oneShot.Ledger)
	}
	if costAfter5 >= second.Ledger.TotalCost {
		t.Errorf("the second page should have cost something: %v then %v", costAfter5, second.Ledger.TotalCost)
	}
	if cur.Emitted() != 10 {
		t.Errorf("Emitted = %d, want 10", cur.Emitted())
	}
}

func TestCursorApproximate(t *testing.T) {
	ds := datatest.MustGenerate(data.Uniform, 300, 3, 73)
	scn := access.MatrixCell(3, access.Cheap, access.Impossible, 10)
	exact := openCursor(t, ds, scn, score.Avg(), 0)
	ep, err := exact.Next(10)
	if err != nil {
		t.Fatal(err)
	}
	approx := openCursor(t, ds, scn, score.Avg(), 0.5)
	ap, err := approx.Next(10)
	if err != nil {
		t.Fatal(err)
	}
	if ap.Ledger.TotalCost > ep.Ledger.TotalCost {
		t.Errorf("approximate cursor cost %v exceeds exact %v", ap.Ledger.TotalCost, ep.Ledger.TotalCost)
	}
	for _, it := range ap.Items {
		truth := score.Avg().Eval(ds.Scores(it.Obj))
		if it.Score > truth+1e-9 {
			t.Fatalf("reported %g overstates truth %g", it.Score, truth)
		}
	}
}

func TestCursorBudgetTruncatesAndDrains(t *testing.T) {
	ds := datatest.MustGenerate(data.Uniform, 200, 2, 74)
	cur := openCursor(t, ds, access.Uniform(2, 1, 1), score.Avg(), 0, access.WithBudget(10*access.UnitCost))
	page, err := cur.Next(50)
	if err != nil {
		t.Fatal(err)
	}
	if !page.Truncated {
		t.Fatal("budget exhaustion should truncate the page")
	}
	if page.Ledger.TotalCost > 10*access.UnitCost {
		t.Errorf("overspent: %v", page.Ledger.TotalCost)
	}
	if len(page.Items) == 0 {
		t.Error("anytime fill should still produce best-effort items")
	}
	// Truncation is sticky: further pages drain candidates access-free.
	before := cur.Ledger().TotalAccesses()
	next, err := cur.Next(20)
	if err != nil {
		t.Fatal(err)
	}
	if !next.Truncated {
		t.Error("truncation should be sticky across pages")
	}
	if cur.Ledger().TotalAccesses() != before {
		t.Error("post-truncation paging performed accesses")
	}
}

// TestCursorTruncatedPagingMatchesFreshDrain is the anytime half of the
// resume contract: pages produced after a budget truncation concatenate to
// exactly the anytime fill a fresh run with the larger K and the same
// budget would produce.
func TestCursorTruncatedPagingMatchesFreshDrain(t *testing.T) {
	ds := datatest.MustGenerate(data.Uniform, 120, 2, 75)
	scn := access.Uniform(2, 1, 1)
	budget := access.WithBudget(8 * access.UnitCost)

	alg, _ := NewNC(midDepths(2), nil)
	fresh, _ := mustRun(t, alg, ds, scn, score.Avg(), 30, budget)
	if !fresh.Truncated {
		t.Fatal("test needs a truncating budget")
	}

	cur := openCursor(t, ds, scn, score.Avg(), 0, budget)
	var got []Item
	for _, d := range []int{7, 0, 11, 12} {
		page, err := cur.Next(d)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, page.Items...)
	}
	if !reflect.DeepEqual(got, fresh.Items) {
		t.Fatalf("truncated pages diverge from fresh drain:\n%v\n%v", got, fresh.Items)
	}
	if !reflect.DeepEqual(cur.Ledger(), fresh.Ledger) {
		t.Errorf("truncated paging ledger diverges from fresh run")
	}
}

func TestCursorNextUntil(t *testing.T) {
	ds := datatest.MustGenerate(data.Uniform, 150, 2, 76)
	f := score.Avg()
	scn := access.Uniform(2, 1, 1)
	oracle := ds.TopK(f.Eval, ds.N())
	tau := oracle[9].Score // exactly 10 objects score >= tau

	cur := openCursor(t, ds, scn, f, 0)
	page, err := cur.NextUntil(tau)
	if err != nil {
		t.Fatal(err)
	}
	if len(page.Items) != 10 {
		t.Fatalf("NextUntil(%g) returned %d items, want 10", tau, len(page.Items))
	}
	for i, it := range page.Items {
		if it.Obj != oracle[i].Obj {
			t.Fatalf("rank %d: got %d want %d", i, it.Obj, oracle[i].Obj)
		}
		if it.Score < tau {
			t.Fatalf("rank %d: score %g below tau %g", i, it.Score, tau)
		}
	}
	if cur.Exhausted() {
		t.Error("a tau suspension is not exhaustion")
	}
	// The boundary candidate was not consumed: ordinal paging resumes
	// exactly at rank 10, and a lower tau deepens further.
	deeper, err := cur.Next(3)
	if err != nil {
		t.Fatal(err)
	}
	for i, it := range deeper.Items {
		if it.Obj != oracle[10+i].Obj {
			t.Fatalf("post-tau rank %d: got %d want %d", 10+i, it.Obj, oracle[10+i].Obj)
		}
	}
	wider, err := cur.NextUntil(oracle[19].Score)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(deeper.Items) + len(wider.Items) + 10; got != 20 {
		t.Fatalf("tau deepening reached %d total items, want 20", got)
	}
}

// TestCursorNextUntilMatchesOrdinal checks the two paging modes agree: the
// score-range page equals the ordinal prefix of the same rank depth, with
// the same ledger.
func TestCursorNextUntilMatchesOrdinal(t *testing.T) {
	ds := datatest.MustGenerate(data.Gaussian, 200, 2, 77)
	f := score.Min()
	scn := access.Uniform(2, 1, 2)
	oracle := ds.TopK(f.Eval, ds.N())
	tau := oracle[14].Score

	byScore := openCursor(t, ds, scn, f, 0)
	sp, err := byScore.NextUntil(tau)
	if err != nil {
		t.Fatal(err)
	}
	byRank := openCursor(t, ds, scn, f, 0)
	rp, err := byRank.Next(len(sp.Items))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sp.Items, rp.Items) {
		t.Fatalf("score-range page diverges from ordinal page:\n%v\n%v", sp.Items, rp.Items)
	}
	if !reflect.DeepEqual(byScore.Ledger(), byRank.Ledger()) {
		t.Error("score-range ledger diverges from ordinal ledger at equal depth")
	}
}

func TestCursorCloseAndValidation(t *testing.T) {
	ds := datatest.MustGenerate(data.Uniform, 10, 2, 1)
	sess := mustSession(t, ds, access.Uniform(2, 1, 1))
	prob, _ := NewProblem(score.Avg(), 1, sess)
	if _, err := (&NC{Sel: nil}).Open(prob, nil); err == nil {
		t.Error("nil selector should fail")
	}
	if _, err := (&NC{Sel: MustNewSRG(midDepths(2), nil), Epsilon: -1}).Open(prob, nil); err == nil {
		t.Error("negative epsilon should fail")
	}
	cur, err := (&NC{Sel: MustNewSRG(midDepths(2), nil)}).Open(prob, nil)
	if err != nil {
		t.Fatalf("valid cursor rejected: %v", err)
	}
	// The problem is consumed by the cursor.
	if _, err := (TA{}).Run(prob); err == nil {
		t.Error("consumed problem should refuse other algorithms")
	}
	if _, err := cur.Next(-1); err == nil {
		t.Error("negative page size should fail")
	}
	released := 0
	cur.SetRelease(func() { released++ })
	cur.Close()
	cur.Close() // idempotent
	if released != 1 {
		t.Errorf("release hook ran %d times, want 1", released)
	}
	if _, err := cur.Next(1); !errors.Is(err, ErrCursorClosed) {
		t.Errorf("Next after Close = %v, want ErrCursorClosed", err)
	}
	if _, err := cur.NextUntil(0); !errors.Is(err, ErrCursorClosed) {
		t.Errorf("NextUntil after Close = %v, want ErrCursorClosed", err)
	}
}

func TestTACursorMatchesRun(t *testing.T) {
	ds := datatest.MustGenerate(data.Uniform, 150, 3, 81)
	f := score.Avg()
	scn := access.Uniform(3, 1, 1)

	fresh, _ := mustRun(t, TA{}, ds, scn, f, 20)
	sess := mustSession(t, ds, scn)
	prob, _ := NewProblem(f, 1, sess)
	cur, err := TA{}.Open(prob)
	if err != nil {
		t.Fatal(err)
	}
	var got []Item
	for _, d := range []int{6, 0, 1, 13} {
		page, err := cur.Next(d)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, page.Items...)
	}
	if !reflect.DeepEqual(got, fresh.Items) {
		t.Fatalf("TA pages diverge from one-shot:\n%v\n%v", got, fresh.Items)
	}
	if !reflect.DeepEqual(cur.Ledger(), fresh.Ledger) {
		t.Errorf("TA paged ledger diverges from one-shot")
	}
	if cur.Emitted() != 20 {
		t.Errorf("Emitted = %d, want 20", cur.Emitted())
	}
	cur.Close()
	if _, err := cur.Next(1); !errors.Is(err, ErrCursorClosed) {
		t.Errorf("Next after Close = %v, want ErrCursorClosed", err)
	}
}

func TestTACursorExhaustion(t *testing.T) {
	ds := datatest.MustGenerate(data.Uniform, 25, 2, 82)
	sess := mustSession(t, ds, access.Uniform(2, 1, 1))
	prob, _ := NewProblem(score.Avg(), 1, sess)
	cur, err := TA{}.Open(prob)
	if err != nil {
		t.Fatal(err)
	}
	page, err := cur.Next(100)
	if err != nil {
		t.Fatal(err)
	}
	if len(page.Items) != 25 {
		t.Fatalf("over-deep page returned %d items, want all 25", len(page.Items))
	}
	if !cur.Exhausted() {
		t.Error("TA cursor should report Exhausted")
	}
	before := cur.Ledger().TotalAccesses()
	page, err = cur.Next(5)
	if err != nil || len(page.Items) != 0 {
		t.Errorf("exhausted TA page: %d items, %v", len(page.Items), err)
	}
	if cur.Ledger().TotalAccesses() != before {
		t.Error("exhausted TA Next performed accesses")
	}
}

// TestMProCursorMatchesRun pins MPro's cursor to its one-shot run — the
// unification claim (MPro = NC + derived SR/G selector) extended to
// suspension.
func TestMProCursorMatchesRun(t *testing.T) {
	ds := datatest.MustGenerate(data.Uniform, 120, 3, 83)
	f := score.Min()
	scn := access.MatrixCell(3, access.Cheap, access.Expensive, 5)

	fresh, _ := mustRun(t, MPro{}, ds, scn, f, 12)
	sess := mustSession(t, ds, scn)
	prob, _ := NewProblem(f, 1, sess)
	cur, err := MPro{}.Open(prob, nil)
	if err != nil {
		t.Fatal(err)
	}
	var got []Item
	for _, d := range []int{4, 4, 4} {
		page, err := cur.Next(d)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, page.Items...)
	}
	if !reflect.DeepEqual(got, fresh.Items) {
		t.Fatalf("MPro pages diverge from one-shot:\n%v\n%v", got, fresh.Items)
	}
	if !reflect.DeepEqual(cur.Ledger(), fresh.Ledger) {
		t.Errorf("MPro paged ledger diverges from one-shot")
	}
}
