package algo

import (
	"repro/internal/data"
	"repro/internal/state"
)

// NRA is Fagin's No-Random-Access algorithm for the "random access
// impossible" row of Figure 2. It performs only equal-depth sorted
// accesses, maintains lower and upper bounds per object, and halts when k
// objects' lower bounds dominate every other object's upper bound
// (including the virtual unseen bound F(ell)). NRA determines the top-k
// *set*; exact scores (and hence the internal order) are only known for
// objects that happen to be complete, so Items carry the final lower
// bounds with Exact set accordingly.
type NRA struct{}

// Name returns "NRA".
func (NRA) Name() string { return "NRA" }

// Run executes NRA.
func (NRA) Run(p *Problem) (*Result, error) {
	if err := p.Begin(); err != nil {
		return nil, err
	}
	sess := p.Session
	if err := requireAll("NRA", sess, true, false); err != nil {
		return nil, err
	}
	tab, err := state.NewTable(sess.N(), sess.M(), p.F)
	if err != nil {
		return nil, err
	}
	preds := roundRobinPreds(sess)

	for {
		advanced := false
		for _, i := range preds {
			if sess.SortedExhausted(i) {
				continue
			}
			obj, s, err := sess.SortedNext(i)
			if err != nil {
				return nil, err
			}
			advanced = true
			tab.ObserveSorted(i, obj, s)
		}
		if set, ok := nraHalt(tab, p.K); ok {
			return &Result{Items: set, Ledger: sess.Ledger()}, nil
		}
		if !advanced {
			break // exhausted without halting: fewer than k objects exist
		}
	}
	set, _ := nraHalt(tab, min(p.K, tab.SeenCount()))
	return &Result{Items: set, Ledger: sess.Ledger()}, nil
}

// nraHalt evaluates the NRA stopping rule: take the k seen objects with
// the best lower bounds (ties by higher OID); halt when the k-th best
// lower bound is at least the maximal upper bound among all other objects,
// seen or unseen. It returns the answer items when the rule fires.
func nraHalt(tab *state.Table, k int) ([]Item, bool) {
	if k == 0 {
		return nil, true
	}
	if tab.SeenCount() < k {
		return nil, false
	}
	type cand struct {
		obj int
		lo  float64
	}
	// Partial selection of the k best lower bounds among seen objects.
	top := make([]cand, 0, k)
	worse := func(a, b cand) bool { return data.Less(a.lo, a.obj, b.lo, b.obj) }
	for u := 0; u < tab.N(); u++ {
		if !tab.Seen(u) {
			continue
		}
		c := cand{obj: u, lo: tab.Lower(u)}
		pos := len(top)
		for pos > 0 && worse(top[pos-1], c) {
			pos--
		}
		if pos < k {
			if len(top) < k {
				top = append(top, cand{})
			}
			copy(top[pos+1:], top[pos:len(top)-1])
			top[pos] = c
		}
	}
	wk := top[len(top)-1].lo
	inTop := make(map[int]bool, k)
	for _, c := range top {
		inTop[c.obj] = true
	}
	// Maximal upper bound among everything outside the candidate set.
	maxOther := 0.0
	if !tab.AllSeen() {
		maxOther = tab.UnseenUpper()
	}
	for u := 0; u < tab.N(); u++ {
		if !tab.Seen(u) || inTop[u] {
			continue
		}
		if up := tab.Upper(u); up > maxOther {
			maxOther = up
		}
	}
	if wk < maxOther {
		return nil, false
	}
	items := make([]Item, len(top))
	for i, c := range top {
		exact := tab.Complete(c.obj)
		items[i] = Item{Obj: c.obj, Score: c.lo, Exact: exact}
	}
	return items, true
}
