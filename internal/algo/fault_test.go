package algo

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/access"
	"repro/internal/data"
	"repro/internal/data/datatest"
	"repro/internal/score"
)

// faultBackend wraps a DatasetBackend and fails accesses mid-query: by
// global call ordinal (transient window) or permanently on one predicate.
type faultBackend struct {
	access.DatasetBackend
	calls    int
	failFrom int // fail calls with 1-based ordinal in (failFrom, failTo]
	failTo   int
	deadPred int // -1 = none; every access on this predicate fails
}

func (b *faultBackend) failNow(pred int) bool {
	b.calls++
	if b.deadPred >= 0 && pred == b.deadPred {
		return true
	}
	return b.calls > b.failFrom && b.calls <= b.failTo
}

func (b *faultBackend) Sorted(ctx context.Context, pred, rank int) (int, float64, error) {
	if b.failNow(pred) {
		return 0, 0, errSource
	}
	return b.DatasetBackend.Sorted(ctx, pred, rank)
}

func (b *faultBackend) Random(ctx context.Context, pred, obj int) (float64, error) {
	if b.failNow(pred) {
		return 0, errSource
	}
	return b.DatasetBackend.Random(ctx, pred, obj)
}

var errSource = errors.New("transient source error")

// auditTrace cross-checks the session's access trace against its ledger:
// the trace length must equal the billed access count per predicate and
// kind, and no access may appear twice (a retried access that was billed
// twice would violate the no-double-charge invariant).
func auditTrace(t *testing.T, sess *access.Session) {
	t.Helper()
	led := sess.Ledger()
	ns := make([]int, sess.M())
	nr := make([]int, sess.M())
	sortedSeen := make(map[[2]int]bool)
	randomSeen := make(map[[2]int]bool)
	for _, rec := range sess.Trace() {
		key := [2]int{rec.Pred, rec.Obj}
		if rec.Kind == access.SortedAccess {
			ns[rec.Pred]++
			if sortedSeen[key] {
				t.Fatalf("sorted access double-charged: %v", rec)
			}
			sortedSeen[key] = true
		} else {
			nr[rec.Pred]++
			if randomSeen[key] {
				t.Fatalf("random probe double-charged: %v", rec)
			}
			randomSeen[key] = true
		}
	}
	for i := 0; i < sess.M(); i++ {
		if ns[i] != led.SortedCounts[i] || nr[i] != led.RandomCounts[i] {
			t.Fatalf("trace/ledger mismatch on p%d: trace sa=%d ra=%d, ledger sa=%d ra=%d",
				i+1, ns[i], nr[i], led.SortedCounts[i], led.RandomCounts[i])
		}
	}
}

// TestNCResumesAfterTransientFailure: a fault-tolerant NC run absorbs a
// transient mid-query failure burst, retries, and still proves the exact
// top-k — with failed accesses never billed and no access charged twice.
func TestNCResumesAfterTransientFailure(t *testing.T) {
	ds := datatest.MustGenerate(data.Uniform, 40, 3, 9)
	b := &faultBackend{DatasetBackend: access.DatasetBackend{DS: ds}, failFrom: 4, failTo: 6, deadPred: -1}
	sess, err := access.NewSession(b, access.Uniform(3, 1, 1),
		access.WithTrace(),
		access.WithResilience(&access.Resilience{Breakers: access.NewBreakerSet(3, access.BreakerConfig{})}))
	if err != nil {
		t.Fatal(err)
	}
	alg, err := NewNC([]float64{0.5, 0.5, 0.5}, nil)
	if err != nil {
		t.Fatal(err)
	}
	prob, err := NewProblem(score.Min(), 5, sess)
	if err != nil {
		t.Fatal(err)
	}
	res, err := alg.Run(prob)
	if err != nil {
		t.Fatalf("NC did not absorb the transient failure: %v", err)
	}
	if res.Truncated || len(res.Degraded) != 0 {
		t.Fatalf("transient failure degraded the answer: truncated=%v degraded=%v", res.Truncated, res.Degraded)
	}
	assertTopK(t, "NC/transient", ds, score.Min(), 5, res)
	for _, it := range res.Items {
		if !it.Exact {
			t.Fatalf("item %+v not exact after recovery", it)
		}
	}
	auditTrace(t, sess)
	// Every backend call is either billed (traced) or one of the two
	// absorbed failures; a hidden retry loop would break this count.
	if want := len(sess.Trace()) + 2; b.calls != want {
		t.Fatalf("backend calls = %d, want %d (successes + 2 failures)", b.calls, want)
	}
}

// TestNCDegradesOnPredicateOutage: with one predicate permanently dead,
// the breakers open, the scenario degrades, and NC returns a best-effort
// truncated answer with machine-readable reasons instead of hanging or
// erroring. Nothing is ever billed on the dead predicate.
func TestNCDegradesOnPredicateOutage(t *testing.T) {
	ds := datatest.MustGenerate(data.Uniform, 40, 3, 11)
	b := &faultBackend{DatasetBackend: access.DatasetBackend{DS: ds}, deadPred: 2}
	sess, err := access.NewSession(b, access.Uniform(3, 1, 1),
		access.WithTrace(),
		access.WithResilience(&access.Resilience{
			Breakers: access.NewBreakerSet(3, access.BreakerConfig{FailureThreshold: 2, Cooldown: time.Hour}),
		}))
	if err != nil {
		t.Fatal(err)
	}
	alg, err := NewNC([]float64{0.5, 0.5, 0.5}, nil)
	if err != nil {
		t.Fatal(err)
	}
	prob, err := NewProblem(score.Min(), 3, sess)
	if err != nil {
		t.Fatal(err)
	}
	res, err := alg.Run(prob)
	if err != nil {
		t.Fatalf("outage must degrade, not fail: %v", err)
	}
	if !res.Truncated {
		t.Fatal("outage answer not flagged Truncated")
	}
	if len(res.Degraded) == 0 {
		t.Fatalf("no degraded reasons on outage answer")
	}
	var sawCircuit bool
	for _, r := range res.Degraded {
		if strings.HasPrefix(r, "circuit_open:") {
			sawCircuit = true
		}
	}
	if !sawCircuit {
		t.Fatalf("degraded reasons %v carry no circuit_open entry", res.Degraded)
	}
	led := sess.Ledger()
	if led.SortedCounts[2] != 0 || led.RandomCounts[2] != 0 {
		t.Fatalf("dead predicate was billed: %+v", led)
	}
	for _, it := range res.Items {
		if it.Exact {
			truth := score.Min().Eval(ds.Scores(it.Obj))
			if it.Score != truth {
				t.Fatalf("degraded answer lies: object %d reported exact %g, truth %g", it.Obj, it.Score, truth)
			}
		}
	}
	auditTrace(t, sess)
}

// TestTAAbortsCleanlyOnMidQueryFailure: without resilience a mid-query
// backend failure must surface as a clean error — no panic, the failed
// access unbilled, and the trace still equal to the ledger.
func TestTAAbortsCleanlyOnMidQueryFailure(t *testing.T) {
	ds := datatest.MustGenerate(data.Uniform, 30, 2, 3)
	b := &faultBackend{DatasetBackend: access.DatasetBackend{DS: ds}, failFrom: 5, failTo: 1 << 30, deadPred: -1}
	sess, err := access.NewSession(b, access.Uniform(2, 1, 1), access.WithTrace())
	if err != nil {
		t.Fatal(err)
	}
	prob, err := NewProblem(score.Min(), 3, sess)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := (TA{}).Run(prob); err == nil {
		t.Fatal("TA swallowed a backend failure without resilience")
	}
	auditTrace(t, sess)
	if got := len(sess.Trace()); got != 5 {
		t.Fatalf("billed %d accesses, want the 5 successes before the failure", got)
	}
	if b.calls != 6 {
		t.Fatalf("backend calls = %d, want 6 (5 successes + the aborting failure)", b.calls)
	}
}

// TestMProAbortsCleanlyOnMidQueryFailure: same contract for the
// probe-only column's reference algorithm.
func TestMProAbortsCleanlyOnMidQueryFailure(t *testing.T) {
	ds := datatest.MustGenerate(data.Uniform, 30, 2, 7)
	b := &faultBackend{DatasetBackend: access.DatasetBackend{DS: ds}, failFrom: 4, failTo: 1 << 30, deadPred: -1}
	sess, err := access.NewSession(b, access.MatrixCell(2, access.Impossible, access.Cheap, 10), access.WithTrace())
	if err != nil {
		t.Fatal(err)
	}
	prob, err := NewProblem(score.Min(), 3, sess)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := (MPro{}).Run(prob); err == nil {
		t.Fatal("MPro swallowed a backend failure without resilience")
	}
	auditTrace(t, sess)
	if got := len(sess.Trace()); got != 4 {
		t.Fatalf("billed %d accesses, want the 4 successes before the failure", got)
	}
	if b.calls != 5 {
		t.Fatalf("backend calls = %d, want 5 (4 successes + the aborting failure)", b.calls)
	}
}
