// Package billedaccess enforces the billing soundness invariant at the
// heart of the cost model: every source access a query performs must flow
// through a ledgered layer, so that measured cost equals modeled cost. A
// raw Backend.Sorted or Backend.Random call from framework or service
// code is invisible to the session's ledger — the optimizer then reasons
// about a cost the system is not actually paying, and every claim the
// repo makes about "cost" silently understates reality.
//
// The analyzer flags call sites of Sorted, Random (on any type
// implementing access.Backend) and BatchRandom (on any type implementing
// share.BatchBackend) outside the ledgered packages — internal/access,
// internal/share, internal/fault. Forwarding is exempt: a call made
// inside a same-named method of a type that itself implements the
// interface is one composed backend delegating to another (the catalog's
// router, fault wrappers), not an unbilled access — the outermost wrapper
// is still driven through a session.
//
// Legitimate out-of-ledger traffic exists — cost calibration probes,
// readiness checks, the live executor's own-ledgered accesses — and each
// such site carries `//topklint:allow billedaccess <reason>`, so the
// exceptions are enumerable: grep for the directive and you have the
// complete audit of unbilled access in the codebase.
package billedaccess

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/analysis"
)

// Analyzer implements the check.
var Analyzer = &analysis.Analyzer{
	Name: "billedaccess",
	Doc:  "raw Backend.Sorted/Random/BatchRandom calls outside the ledgered layers bypass cost accounting",
	Run:  run,
}

// exempt are the ledgered layers: packages whose job is to wrap raw
// accesses in accounting. internal/cluster is the distribution analogue:
// the coordinator's prefetch cursors and probe router forward shard
// accesses beneath the session, and what it surfaces upward is billed
// there — the scatter-gather oracle pins its ledger byte-identical to the
// unsharded backend's.
// internal/store joins for the same structural reason: the store IS a
// backend — its calibrator times raw Sorted/Random calls to measure the
// very cs and cr the ledger will charge (billing them would be circular),
// and its BatchRandom forwards through offset-sorted point reads beneath
// the interface. Query traffic still reaches the store only through an
// access.Session; the disk-vs-memory oracle pins the two ledgers
// byte-identical.
var exempt = map[string]bool{
	"repro/internal/access":  true,
	"repro/internal/share":   true,
	"repro/internal/fault":   true,
	"repro/internal/cluster": true,
	"repro/internal/store":   true,
}

func run(pass *analysis.Pass) error {
	if exempt[pass.Pkg.Path()] {
		return nil
	}
	backend := lookupIface(pass.Pkg, "repro/internal/access", "Backend")
	batch := lookupIface(pass.Pkg, "repro/internal/share", "BatchBackend")
	if backend == nil && batch == nil {
		return nil // cannot name the interfaces, cannot hold a value of them
	}
	ifaceFor := func(method string) *types.Interface {
		switch method {
		case "Sorted", "Random":
			return backend
		case "BatchRandom":
			return batch
		}
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			forwarder := implementsEither(receiverType(pass, fd), backend, batch)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
				if !ok {
					return true
				}
				iface := ifaceFor(sel.Sel.Name)
				if iface == nil {
					return true
				}
				recv := pass.TypesInfo.TypeOf(sel.X)
				if recv == nil || !implements(recv, iface) {
					return true
				}
				if forwarder && fd.Name.Name == sel.Sel.Name {
					return true // one composed backend delegating to another
				}
				pass.Reportf(call.Pos(), "unbilled %s access: a raw backend call bypasses the session ledger, so its cost never reaches the model (route it through access.Session, or annotate //topklint:allow billedaccess <reason>)", sel.Sel.Name)
				return true
			})
		}
	}
	return nil
}

// receiverType returns the method's receiver type, or nil for plain
// functions.
func receiverType(pass *analysis.Pass, fd *ast.FuncDecl) types.Type {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return nil
	}
	return pass.TypesInfo.TypeOf(fd.Recv.List[0].Type)
}

func implementsEither(t types.Type, a, b *types.Interface) bool {
	if t == nil {
		return false
	}
	return (a != nil && implements(t, a)) || (b != nil && implements(t, b))
}

// implements reports whether t (or *t) satisfies the interface.
func implements(t types.Type, iface *types.Interface) bool {
	if types.Implements(t, iface) {
		return true
	}
	if _, ok := t.(*types.Pointer); !ok {
		return types.Implements(types.NewPointer(t), iface)
	}
	return false
}

// lookupIface resolves an interface by package path and name through the
// transitive imports of the package under analysis.
func lookupIface(from *types.Package, path, name string) *types.Interface {
	seen := map[*types.Package]bool{}
	var find func(p *types.Package) *types.Interface
	find = func(p *types.Package) *types.Interface {
		if p == nil || seen[p] {
			return nil
		}
		seen[p] = true
		if p.Path() == path {
			tn, ok := p.Scope().Lookup(name).(*types.TypeName)
			if !ok {
				return nil
			}
			iface, _ := tn.Type().Underlying().(*types.Interface)
			return iface
		}
		for _, imp := range p.Imports() {
			if r := find(imp); r != nil {
				return r
			}
		}
		return nil
	}
	return find(from)
}
