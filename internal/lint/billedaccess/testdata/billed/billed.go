// Fixture for the billedaccess analyzer: raw backend calls outside the
// ledgered layers are flagged; forwarding and Session use are not.
package billed

import (
	"context"

	"repro/internal/access"
	"repro/internal/share"
)

// Probe performs a raw sorted access: invisible to any ledger.
func Probe(ctx context.Context, b access.Backend) error {
	_, _, err := b.Sorted(ctx, 0, 0) // want "unbilled Sorted access"
	return err
}

// ProbeRandom performs a raw random access.
func ProbeRandom(ctx context.Context, b access.Backend) (float64, error) {
	return b.Random(ctx, 0, 0) // want "unbilled Random access"
}

// Batch performs a raw batched access.
func Batch(ctx context.Context, b share.BatchBackend) ([]float64, error) {
	return b.BatchRandom(ctx, nil, nil) // want "unbilled BatchRandom access"
}

// wrapper composes a backend: same-named delegation is forwarding, not an
// unbilled access.
type wrapper struct{ inner access.Backend }

func (w wrapper) N() int { return w.inner.N() }
func (w wrapper) M() int { return w.inner.M() }

// Sorted forwards to the wrapped backend.
func (w wrapper) Sorted(ctx context.Context, pred, rank int) (int, float64, error) {
	return w.inner.Sorted(ctx, pred, rank)
}

// Random forwards — but its cross-method Sorted call is a genuine access
// the ledger never sees.
func (w wrapper) Random(ctx context.Context, pred, obj int) (float64, error) {
	if pred == 0 {
		_, _, err := w.inner.Sorted(ctx, 0, 0) // want "unbilled Sorted access"
		if err != nil {
			return 0, err
		}
	}
	return w.inner.Random(ctx, pred, obj)
}

// Health documents its out-of-ledger probe with an allow directive.
func Health(ctx context.Context, b access.Backend) error {
	//topklint:allow billedaccess readiness probe, not query traffic (fixture)
	_, _, err := b.Sorted(ctx, 0, 0)
	return err
}

// ViaSession is the sanctioned route: Session bills every access, and its
// Random has a different shape, so it never matches the Backend interface.
func ViaSession(s *access.Session) (float64, error) {
	return s.Random(0, 0)
}
