package billedaccess_test

import (
	"testing"

	"repro/internal/lint/billedaccess"
	"repro/internal/lint/linttest"
)

func TestBilledaccess(t *testing.T) {
	linttest.Run(t, billedaccess.Analyzer, "testdata/billed", "repro/internal/billedfix")
}
