// Package loader loads and type-checks Go packages for the topklint
// analyzers without depending on golang.org/x/tools. It shells out to
// `go list` for build-system metadata (package dirs, file lists, import
// resolution — including the standard library's vendored import remapping)
// and type-checks the dependency graph bottom-up with go/types.
//
// The loader forces CGO_ENABLED=0 so every package, including net and
// os/user, resolves to its pure-Go file set; cgo-generated declarations
// are invisible to go/parser and would otherwise leave dependencies
// half-typed. The repository itself contains no cgo, so analysis results
// are identical.
package loader

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string // absolute paths
	Standard   bool     // part of the standard library

	Fset      *token.FileSet
	Syntax    []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// listPackage mirrors the subset of `go list -json` output we consume.
type listPackage struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Imports    []string
	ImportMap  map[string]string
	Standard   bool
	DepOnly    bool
	Incomplete bool
	Error      *struct{ Err string }
}

// graph is the package universe of one Load call: metadata from go list
// plus memoized type-checking.
type graph struct {
	dir     string
	fset    *token.FileSet
	meta    map[string]*listPackage
	checked map[string]*types.Package
	parsed  map[string][]*ast.File
	infos   map[string]*types.Info
	stack   []string // cycle detection (defensive; go list rejects cycles)
}

// Load lists the packages matching patterns (resolved relative to dir),
// type-checks them and their full dependency graphs, and returns the
// matched packages only, sorted by import path.
func Load(dir string, patterns []string) ([]*Package, error) {
	g, err := newGraph(dir, patterns)
	if err != nil {
		return nil, err
	}
	var roots []*listPackage
	for _, lp := range g.meta {
		if !lp.DepOnly {
			roots = append(roots, lp)
		}
	}
	sort.Slice(roots, func(a, b int) bool { return roots[a].ImportPath < roots[b].ImportPath })
	out := make([]*Package, 0, len(roots))
	for _, lp := range roots {
		if len(lp.GoFiles) == 0 {
			continue
		}
		pkg, err := g.check(lp.ImportPath)
		if err != nil {
			return nil, err
		}
		out = append(out, &Package{
			ImportPath: lp.ImportPath,
			Name:       lp.Name,
			Dir:        lp.Dir,
			GoFiles:    absFiles(lp),
			Standard:   lp.Standard,
			Fset:       g.fset,
			Syntax:     g.parsed[lp.ImportPath],
			Types:      pkg,
			TypesInfo:  g.infos[lp.ImportPath],
		})
	}
	return out, nil
}

// LoadFiles type-checks a directory of Go files as a single package with
// the given import path, resolving its (transitive) imports through the
// regular build system. It is the entry point for analyzer test fixtures,
// which live under testdata/ where go list does not look: the fixture
// files parse as importPath's package, so path-scoped analyzers see the
// package identity the test wants to emulate.
func LoadFiles(dir, importPath string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	ents, err := os.ReadDir(abs)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var files []*ast.File
	var names []string
	imports := map[string]bool{}
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		name := filepath.Join(abs, e.Name())
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
		names = append(names, name)
		for _, imp := range f.Imports {
			imports[strings.Trim(imp.Path.Value, `"`)] = true
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("loader: no Go files in %s", dir)
	}
	delete(imports, "unsafe")
	patterns := make([]string, 0, len(imports))
	for p := range imports {
		patterns = append(patterns, p)
	}
	sort.Strings(patterns)
	g := &graph{
		dir:     abs,
		fset:    fset,
		meta:    map[string]*listPackage{},
		checked: map[string]*types.Package{},
		parsed:  map[string][]*ast.File{},
		infos:   map[string]*types.Info{},
	}
	if len(patterns) > 0 {
		// Resolve the fixture's imports from the enclosing module.
		if err := g.list(patterns); err != nil {
			return nil, err
		}
	}
	info := newInfo()
	conf := types.Config{Importer: &graphImporter{g: g, importMap: nil}}
	tpkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("loader: type-checking %s: %w", dir, err)
	}
	return &Package{
		ImportPath: importPath,
		Name:       tpkg.Name(),
		Dir:        abs,
		GoFiles:    names,
		Fset:       fset,
		Syntax:     files,
		Types:      tpkg,
		TypesInfo:  info,
	}, nil
}

func newGraph(dir string, patterns []string) (*graph, error) {
	g := &graph{
		dir:     dir,
		fset:    token.NewFileSet(),
		meta:    map[string]*listPackage{},
		checked: map[string]*types.Package{},
		parsed:  map[string][]*ast.File{},
		infos:   map[string]*types.Info{},
	}
	if err := g.list(patterns); err != nil {
		return nil, err
	}
	return g, nil
}

// list runs `go list -deps -json` for the patterns and merges the result
// into the graph's metadata table.
func (g *graph) list(patterns []string) error {
	args := append([]string{"list", "-e", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = g.dir
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return fmt.Errorf("loader: go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	dec := json.NewDecoder(&stdout)
	for dec.More() {
		var lp listPackage
		if err := dec.Decode(&lp); err != nil {
			return fmt.Errorf("loader: decoding go list output: %v", err)
		}
		if lp.Error != nil {
			return fmt.Errorf("loader: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		cp := lp
		if prev, ok := g.meta[lp.ImportPath]; ok {
			// Keep the root marking if any listing saw it as a root.
			cp.DepOnly = cp.DepOnly && prev.DepOnly
		}
		g.meta[lp.ImportPath] = &cp
	}
	return nil
}

func absFiles(lp *listPackage) []string {
	out := make([]string, len(lp.GoFiles))
	for i, f := range lp.GoFiles {
		out[i] = filepath.Join(lp.Dir, f)
	}
	return out
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
}

// check type-checks the package (memoized), checking dependencies first.
func (g *graph) check(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if pkg, ok := g.checked[path]; ok {
		return pkg, nil
	}
	for _, p := range g.stack {
		if p == path {
			return nil, fmt.Errorf("loader: import cycle through %s", path)
		}
	}
	lp, ok := g.meta[path]
	if !ok {
		// A package surfaced outside the listed graph (e.g. a fixture
		// import): list it on demand.
		if err := g.list([]string{path}); err != nil {
			return nil, err
		}
		if lp, ok = g.meta[path]; !ok {
			return nil, fmt.Errorf("loader: unknown package %q", path)
		}
	}
	g.stack = append(g.stack, path)
	defer func() { g.stack = g.stack[:len(g.stack)-1] }()

	files := make([]*ast.File, 0, len(lp.GoFiles))
	for _, name := range absFiles(lp) {
		f, err := parser.ParseFile(g.fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := newInfo()
	conf := types.Config{Importer: &graphImporter{g: g, importMap: lp.ImportMap}}
	pkg, err := conf.Check(path, g.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("loader: type-checking %s: %w", path, err)
	}
	g.checked[path] = pkg
	g.parsed[path] = files
	g.infos[path] = info
	return pkg, nil
}

// graphImporter resolves one package's imports against the graph,
// honoring its go list ImportMap (standard-library vendoring).
type graphImporter struct {
	g         *graph
	importMap map[string]string
}

func (i *graphImporter) Import(path string) (*types.Package, error) {
	if mapped, ok := i.importMap[path]; ok {
		path = mapped
	}
	return i.g.check(path)
}
