package registrycomplete_test

import (
	"testing"

	"repro/internal/lint/linttest"
	"repro/internal/lint/registrycomplete"
)

func TestRegistry(t *testing.T) {
	linttest.Run(t, registrycomplete.Analyzer, "testdata/algo", "repro/internal/algo")
}
