// Fixture for the registrycomplete analyzer: a miniature of the real
// registry in repro/internal/algo. TA is registered directly in ByName,
// NC is reachable through NewNC's helper, Rogue is implemented but never
// registered, and shim is deliberately unregistered with an allow
// directive.
package algo

import "fmt"

// Algorithm mirrors the real interface shape.
type Algorithm interface {
	Name() string
	Run(k int) error
}

// TA is registered directly in ByName.
type TA struct{}

func (TA) Name() string    { return "ta" }
func (TA) Run(k int) error { return nil }

// NC is reachable transitively: ByName -> NewNC -> newNC.
type NC struct{}

func (*NC) Name() string    { return "nc" }
func (*NC) Run(k int) error { return nil }

// Rogue implements Algorithm but no registry constructor mentions it.
type Rogue struct{} // want "type Rogue implements Algorithm but is not reachable"

func (Rogue) Name() string    { return "rogue" }
func (Rogue) Run(k int) error { return nil }

// shim is a deliberate internal adapter, exempted with a reason.
type shim struct{} //topklint:allow registrycomplete test double wired manually by the harness

func (shim) Name() string    { return "shim" }
func (shim) Run(k int) error { return nil }

// helper does not implement Algorithm (wrong Run signature) and must not
// be flagged even though it is unregistered.
type helper struct{}

func (helper) Name() string { return "helper" }

// ByName is the registry root.
func ByName(name string) (Algorithm, error) {
	switch name {
	case "ta":
		return TA{}, nil
	case "nc":
		return NewNC(), nil
	}
	return nil, fmt.Errorf("algo: unknown algorithm %q", name)
}

// NewNC delegates to a helper; reachability must follow the call.
func NewNC() Algorithm { return newNC() }

func newNC() *NC { return &NC{} }
