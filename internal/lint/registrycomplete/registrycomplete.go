// Package registrycomplete cross-checks the algorithm registry against
// the package's type set: every concrete type implementing the package's
// Algorithm interface must be reachable from the registry constructors
// ByName and NewNC. The golden tests (internal/algo/golden_test.go) and
// the optimizer's enumeration both walk the registry — an algorithm that
// is implemented but not registered silently escapes both, which is
// exactly how a paper-reproduction drifts from the paper. Deliberately
// unregistered implementations (internal adapters) may be annotated
// `//topklint:allow registrycomplete <reason>`.
package registrycomplete

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/analysis"
	"repro/internal/lint/lintutil"
)

// Analyzer implements the check. It activates on any package that
// declares both an `Algorithm` interface and a `ByName` constructor (in
// this repository, repro/internal/algo), so fixtures can model the real
// registry shape.
var Analyzer = &analysis.Analyzer{
	Name: "registrycomplete",
	Doc:  "every concrete Algorithm implementation must be reachable from ByName/NewNC",
	Run:  run,
}

// registryRoots are the constructors that define "registered".
var registryRoots = []string{"ByName", "NewNC"}

func run(pass *analysis.Pass) error {
	scope := pass.Pkg.Scope()
	ifaceObj, _ := scope.Lookup("Algorithm").(*types.TypeName)
	if ifaceObj == nil {
		return nil
	}
	iface, _ := ifaceObj.Type().Underlying().(*types.Interface)
	if iface == nil || scope.Lookup("ByName") == nil {
		return nil
	}

	// Collect the bodies of all package functions, then walk the call
	// graph from the registry roots so helpers the constructors delegate
	// to still count as registration sites.
	bodies := map[*types.Func]*ast.BlockStmt{}
	for body, fn := range lintutil.FuncBodies(pass.TypesInfo, pass.Files) {
		if fn != nil {
			bodies[fn] = body
		}
	}
	var work []*types.Func
	reachable := map[*types.Func]bool{}
	for _, name := range registryRoots {
		if fn, ok := scope.Lookup(name).(*types.Func); ok {
			reachable[fn] = true
			work = append(work, fn)
		}
	}
	referenced := map[*types.TypeName]bool{}
	for len(work) > 0 {
		fn := work[0]
		work = work[1:]
		body, ok := bodies[fn]
		if !ok {
			continue
		}
		ast.Inspect(body, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.Ident:
				if tn, ok := pass.TypesInfo.Uses[x].(*types.TypeName); ok && tn.Pkg() == pass.Pkg {
					referenced[tn] = true
				}
			case *ast.CallExpr:
				if callee := lintutil.CalleeFunc(pass.TypesInfo, x); callee != nil &&
					callee.Pkg() == pass.Pkg && !reachable[callee] {
					reachable[callee] = true
					work = append(work, callee)
				}
			}
			return true
		})
	}

	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok || named.TypeParams() != nil {
			continue
		}
		if _, isIface := named.Underlying().(*types.Interface); isIface {
			continue
		}
		if !types.Implements(named, iface) && !types.Implements(types.NewPointer(named), iface) {
			continue
		}
		if referenced[tn] {
			continue
		}
		pass.Reportf(tn.Pos(),
			"type %s implements Algorithm but is not reachable from %v; register it (or annotate //topklint:allow registrycomplete <reason>)",
			name, registryRoots)
	}
	return nil
}
