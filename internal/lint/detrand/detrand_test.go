package detrand_test

import (
	"testing"

	"repro/internal/lint/detrand"
	"repro/internal/lint/linttest"
)

func TestDetrand(t *testing.T) {
	linttest.Run(t, detrand.Analyzer, "testdata/sim", "repro/internal/sim")
}
