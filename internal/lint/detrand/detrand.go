// Package detrand forbids the global math/rand generator in non-test
// code. EXPERIMENTS.md regenerates the paper's result shapes from fixed
// seeds; a single rand.Float64() against the process-global source makes
// datasets, samples, and optimizer search paths irreproducible. All
// randomness must flow from an injected, explicitly seeded *rand.Rand
// (constructors like rand.New and rand.NewSource remain legal — they are
// how seeded generators are built).
package detrand

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/analysis"
)

// Analyzer implements the check.
var Analyzer = &analysis.Analyzer{
	Name: "detrand",
	Doc:  "forbid the unseeded global math/rand source; inject a seeded *rand.Rand",
	Run:  run,
}

// randPackages are the package paths whose global generator is forbidden.
var randPackages = map[string]bool{
	"math/rand":    true,
	"math/rand/v2": true,
}

// allowed are package-level names that do not touch the global source:
// generator constructors and the handful of seed-carrying helpers.
var allowed = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true, // math/rand/v2
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			base, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pkgName, ok := pass.TypesInfo.Uses[base].(*types.PkgName)
			if !ok || !randPackages[pkgName.Imported().Path()] {
				return true
			}
			obj := pass.TypesInfo.Uses[sel.Sel]
			switch obj.(type) {
			case *types.TypeName, *types.Const:
				return true // rand.Rand, rand.Source etc. are fine
			}
			if allowed[sel.Sel.Name] {
				return true
			}
			pass.Reportf(sel.Pos(),
				"use of global %s.%s; draw from an injected seeded *rand.Rand so experiments stay reproducible",
				pkgName.Imported().Path(), sel.Sel.Name)
			return true
		})
	}
	return nil
}
