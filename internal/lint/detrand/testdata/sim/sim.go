// Fixture for the detrand analyzer: global math/rand draws are flagged,
// seeded generators and type references are not.
package sim

import (
	"math/rand"
	randv2 "math/rand/v2"
)

func globalDraws() (int, float64) {
	n := rand.Intn(10)                 // want "use of global math/rand\.Intn"
	f := rand.Float64()                // want "use of global math/rand\.Float64"
	rand.Shuffle(3, func(i, j int) {}) // want "use of global math/rand\.Shuffle"
	return n, f
}

func globalV2() int {
	return randv2.IntN(10) // want "use of global math/rand/v2\.IntN"
}

func seeded(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	z := rand.NewZipf(rng, 1.1, 1.0, 100)
	return rng.Float64() + float64(z.Uint64())
}

func seededV2(a, b uint64) uint64 {
	rng := randv2.New(randv2.NewPCG(a, b))
	return rng.Uint64()
}

func typeRefsOnly(r *rand.Rand, src rand.Source) {
	_ = r
	_ = src
}

func allowedDraw() int {
	return rand.Int() //topklint:allow detrand jitter for retry backoff, reproducibility irrelevant
}
