package analysis

import (
	"fmt"
	"os"
	"sort"
)

// ApplyFixes applies every diagnostic's mechanical fix to the files on
// disk and returns how many fixes were applied. Fixes are insert-only, so
// applying a file's fixes in descending offset order keeps every remaining
// offset valid; duplicate (offset, text) pairs — e.g. the same missing
// field reported against two pool sites — collapse to one insertion.
func ApplyFixes(diags []Diagnostic) (int, error) {
	type insert struct {
		offset int
		text   string
	}
	byFile := map[string][]insert{}
	for _, d := range diags {
		if d.Fix == nil {
			continue
		}
		byFile[d.Fix.At.Filename] = append(byFile[d.Fix.At.Filename], insert{d.Fix.At.Offset, d.Fix.Insert})
	}
	applied := 0
	for file, ins := range byFile {
		sort.Slice(ins, func(a, b int) bool {
			if ins[a].offset != ins[b].offset {
				return ins[a].offset > ins[b].offset
			}
			return ins[a].text > ins[b].text
		})
		src, err := os.ReadFile(file)
		if err != nil {
			return applied, fmt.Errorf("applying fixes: %w", err)
		}
		prev := insert{offset: -1}
		for _, in := range ins {
			if in == prev {
				continue
			}
			prev = in
			if in.offset < 0 || in.offset > len(src) {
				return applied, fmt.Errorf("applying fixes: offset %d out of range for %s (%d bytes)", in.offset, file, len(src))
			}
			patched := make([]byte, 0, len(src)+len(in.text))
			patched = append(patched, src[:in.offset]...)
			patched = append(patched, in.text...)
			patched = append(patched, src[in.offset:]...)
			src = patched
			applied++
		}
		info, err := os.Stat(file)
		mode := os.FileMode(0o644)
		if err == nil {
			mode = info.Mode()
		}
		if err := os.WriteFile(file, src, mode); err != nil {
			return applied, fmt.Errorf("applying fixes: %w", err)
		}
	}
	return applied, nil
}
