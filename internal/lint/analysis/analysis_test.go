package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// runOnSource type-checks one dependency-free file and applies the
// analyzer to it.
func runOnSource(t *testing.T, src string, a *Analyzer) []Diagnostic {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fixture.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{Uses: map[*ast.Ident]types.Object{}, Defs: map[*ast.Ident]types.Object{}}
	pkg, err := (&types.Config{}).Check("repro/internal/fixture", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}
	diags, err := RunPackage(fset, []*ast.File{f}, pkg, info, []*Analyzer{a})
	if err != nil {
		t.Fatal(err)
	}
	return diags
}

// flagCalls reports every function call, so directive behavior can be
// probed line by line.
var flagCalls = &Analyzer{
	Name: "flagcalls",
	Doc:  "test analyzer: reports every call expression",
	Run: func(pass *Pass) error {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					pass.Reportf(call.Pos(), "call site")
				}
				return true
			})
		}
		return nil
	},
}

func TestAllowDirectiveSuppresses(t *testing.T) {
	src := `package fixture

func f() { g() } //topklint:allow flagcalls trailing directive

//topklint:allow flagcalls preceding directive
func h() { g() }

func g() {}

func unsuppressed() { g() }

func wrongAnalyzer() { g() } //topklint:allow otherlint reason
`
	diags := runOnSource(t, src, flagCalls)
	if len(diags) != 2 {
		t.Fatalf("want 2 diagnostics (unsuppressed and wrongAnalyzer), got %d: %v", len(diags), diags)
	}
	if diags[0].Pos.Line != 10 || diags[1].Pos.Line != 12 {
		t.Errorf("diagnostics at lines %d,%d; want 10,12", diags[0].Pos.Line, diags[1].Pos.Line)
	}
}

func TestMalformedDirectiveIsReported(t *testing.T) {
	src := `package fixture

//topklint:allow flagcalls
func f() { g() }

func g() {}
`
	diags := runOnSource(t, src, flagCalls)
	// The reason-less directive is reported AND does not suppress, so the
	// call in f is still flagged alongside g()'s in-body absence.
	var malformed, calls int
	for _, d := range diags {
		if strings.Contains(d.Message, "malformed allow directive") {
			malformed++
		} else {
			calls++
		}
	}
	if malformed != 1 || calls != 1 {
		t.Fatalf("want 1 malformed-directive report and 1 surviving call report, got %v", diags)
	}
}

func TestPackageScoping(t *testing.T) {
	scoped := &Analyzer{
		Name:     "scoped",
		Doc:      "test analyzer restricted to one package",
		Packages: []string{"repro/internal/elsewhere"},
		Run: func(pass *Pass) error {
			pass.Reportf(pass.Files[0].Pos(), "ran")
			return nil
		},
	}
	diags := runOnSource(t, "package fixture\n", scoped)
	if len(diags) != 0 {
		t.Fatalf("scoped analyzer must not run on repro/internal/fixture: %v", diags)
	}
}

func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{
		Analyzer: "nopanic",
		Pos:      token.Position{Filename: "a.go", Line: 3, Column: 7},
		Message:  "panic in serving path",
	}
	if got, want := d.String(), "a.go:3:7: nopanic: panic in serving path"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}
