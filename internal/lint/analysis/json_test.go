package analysis

import (
	"encoding/json"
	"go/token"
	"strings"
	"testing"
)

func TestWriteJSON(t *testing.T) {
	diags := []Diagnostic{
		{
			Analyzer: "resetcomplete",
			Pos:      token.Position{Filename: "a.go", Line: 7, Column: 2},
			Message:  "field x is not reset",
			Fix: &Fix{
				At:     token.Position{Filename: "a.go", Line: 10, Offset: 120},
				Insert: "\n\ts.x = 0",
			},
		},
		{
			Analyzer: "poolpair",
			Pos:      token.Position{Filename: "b.go", Line: 3, Column: 1},
			Message:  "pooled v is dropped",
		},
	}
	var sb strings.Builder
	if err := WriteJSON(&sb, []string{"resetcomplete", "poolpair"}, diags); err != nil {
		t.Fatal(err)
	}
	var doc jsonReport
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatalf("not valid JSON: %v\n%s", err, sb.String())
	}
	if doc.Version != JSONVersion {
		t.Errorf("version = %q, want %q", doc.Version, JSONVersion)
	}
	if len(doc.Results) != 2 {
		t.Fatalf("got %d results, want 2", len(doc.Results))
	}
	r := doc.Results[0]
	if r.RuleID != "resetcomplete" || r.File != "a.go" || r.Line != 7 || r.Column != 2 {
		t.Errorf("result[0] location mismatch: %+v", r)
	}
	if r.Fix == nil || r.Fix.Offset != 120 || r.Fix.Insert != "\n\ts.x = 0" {
		t.Errorf("result[0] fix mismatch: %+v", r.Fix)
	}
	if doc.Results[1].Fix != nil {
		t.Errorf("result[1] should carry no fix: %+v", doc.Results[1].Fix)
	}
}
