package analysis

import (
	"encoding/json"
	"io"
)

// The -json output is SARIF-lite: the stable subset of SARIF that CI
// annotation tooling actually consumes — one run, one tool, a flat result
// list with ruleId/level/message/physical location — without the nested
// envelope bloat. The schema is versioned independently of topklint so
// consumers can detect shape changes.

// JSONVersion identifies the -json output schema.
const JSONVersion = "topklint-sarif-lite/1"

// jsonReport is the top-level -json document.
type jsonReport struct {
	Version string       `json:"version"`
	Tool    jsonTool     `json:"tool"`
	Results []jsonResult `json:"results"`
}

type jsonTool struct {
	Name  string   `json:"name"`
	Rules []string `json:"rules"`
}

// jsonResult is one diagnostic in SARIF-lite form.
type jsonResult struct {
	RuleID  string   `json:"ruleId"`
	Level   string   `json:"level"`
	Message string   `json:"message"`
	File    string   `json:"file"`
	Line    int      `json:"line"`
	Column  int      `json:"column"`
	Fix     *jsonFix `json:"fix,omitempty"`
}

// jsonFix mirrors Fix: an insertion at a byte offset of the result's file.
type jsonFix struct {
	File   string `json:"file"`
	Offset int    `json:"offset"`
	Line   int    `json:"line"`
	Insert string `json:"insert"`
}

// WriteJSON encodes the diagnostics as a SARIF-lite document. rules names
// the analyzers that ran (reported even when clean, so a consumer can tell
// "no violations" from "analyzer not run").
func WriteJSON(w io.Writer, rules []string, diags []Diagnostic) error {
	report := jsonReport{
		Version: JSONVersion,
		Tool:    jsonTool{Name: "topklint", Rules: rules},
		Results: make([]jsonResult, 0, len(diags)),
	}
	for _, d := range diags {
		r := jsonResult{
			RuleID:  d.Analyzer,
			Level:   "error",
			Message: d.Message,
			File:    d.Pos.Filename,
			Line:    d.Pos.Line,
			Column:  d.Pos.Column,
		}
		if d.Fix != nil {
			r.Fix = &jsonFix{
				File:   d.Fix.At.Filename,
				Offset: d.Fix.At.Offset,
				Line:   d.Fix.At.Line,
				Insert: d.Fix.Insert,
			}
		}
		report.Results = append(report.Results, r)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(report)
}
