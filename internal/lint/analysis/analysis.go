// Package analysis is a minimal, self-contained counterpart of
// golang.org/x/tools/go/analysis, sized for the topklint suite. It defines
// the Analyzer/Pass/Diagnostic vocabulary, runs analyzers over packages
// loaded by internal/lint/loader, and implements the
// `//topklint:allow <analyzer> <reason>` suppression directive that the
// analyzers honor for deliberate, documented exceptions.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and allow directives.
	Name string
	// Doc is a one-paragraph description of the enforced invariant.
	Doc string
	// Packages, when non-empty, restricts the analyzer to packages with
	// exactly these import paths. Empty means every package.
	Packages []string
	// Run reports the package's violations through pass.Reportf.
	Run func(pass *Pass) error
}

// applies reports whether the analyzer covers the given import path.
func (a *Analyzer) applies(path string) bool {
	if len(a.Packages) == 0 {
		return true
	}
	for _, p := range a.Packages {
		if p == path {
			return true
		}
	}
	return false
}

// Fix is a mechanical remediation for a diagnostic: Insert is spliced
// into the diagnostic's file at byte offset At.Offset. Fixes are inserts
// only — every mechanically fixable topklint diagnostic (a missing Reset
// zeroing stub) is an insertion, and insert-only fixes compose: applying
// several to one file in descending offset order never invalidates the
// remaining offsets.
type Fix struct {
	At     token.Position
	Insert string
}

// Diagnostic is one reported violation.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
	// Fix, when non-nil, is a mechanical remediation topklint -fix can
	// apply.
	Fix *Fix
}

// String formats the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Pass carries one analyzer run over one package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	allow map[allowKey]bool
	diags *[]Diagnostic
}

type allowKey struct {
	file     string
	line     int
	analyzer string
}

// AllowDirective is the comment prefix of a suppression.
const AllowDirective = "//topklint:allow"

// Reportf records a diagnostic at pos unless an allow directive covers it.
// A directive suppresses diagnostics of its analyzer on its own line and
// on the line directly below it, so both trailing and preceding comments
// work:
//
//	risky() //topklint:allow nopanic guarded by caller contract
//
//	//topklint:allow nopanic guarded by caller contract
//	risky()
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.report(pos, nil, format, args...)
}

// ReportFixf is Reportf carrying a mechanical fix: insert gives the text
// to splice in at the insertion position. The fix travels with the
// diagnostic into -json output and is applied by topklint -fix.
func (p *Pass) ReportFixf(pos, insertAt token.Pos, insert, format string, args ...interface{}) {
	fix := &Fix{At: p.Fset.Position(insertAt), Insert: insert}
	p.report(pos, fix, format, args...)
}

func (p *Pass) report(pos token.Pos, fix *Fix, format string, args ...interface{}) {
	position := p.Fset.Position(pos)
	if p.allow[allowKey{position.Filename, position.Line, p.Analyzer.Name}] {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      position,
		Message:  fmt.Sprintf(format, args...),
		Fix:      fix,
	})
}

// buildAllowTable scans all comments for allow directives. A malformed
// directive (unknown analyzer set is not checked here, but a missing
// reason is) is itself reported so suppressions stay auditable.
func buildAllowTable(fset *token.FileSet, files []*ast.File, diags *[]Diagnostic) map[allowKey]bool {
	allow := map[allowKey]bool{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				if !strings.HasPrefix(text, AllowDirective) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, AllowDirective))
				fields := strings.Fields(rest)
				pos := fset.Position(c.Pos())
				if len(fields) < 2 {
					*diags = append(*diags, Diagnostic{
						Analyzer: "topklint",
						Pos:      pos,
						Message:  "malformed allow directive: want //topklint:allow <analyzer> <reason>",
					})
					continue
				}
				name := fields[0]
				allow[allowKey{pos.Filename, pos.Line, name}] = true
				allow[allowKey{pos.Filename, pos.Line + 1, name}] = true
			}
		}
	}
	return allow
}

// RunPackage applies the analyzers to one type-checked package and
// returns the diagnostics sorted by position.
func RunPackage(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	allow := buildAllowTable(fset, files, &diags)
	for _, a := range analyzers {
		if !a.applies(pkg.Path()) {
			continue
		}
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			allow:     allow,
			diags:     &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %v", pkg.Path(), a.Name, err)
		}
	}
	sort.Slice(diags, func(a, b int) bool {
		pa, pb := diags[a].Pos, diags[b].Pos
		if pa.Filename != pb.Filename {
			return pa.Filename < pb.Filename
		}
		if pa.Line != pb.Line {
			return pa.Line < pb.Line
		}
		if pa.Column != pb.Column {
			return pa.Column < pb.Column
		}
		return diags[a].Analyzer < diags[b].Analyzer
	})
	return diags, nil
}
