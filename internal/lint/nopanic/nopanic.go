// Package nopanic forbids panic in the serving path. The ROADMAP's
// production goal (a middleware serving heavy traffic) means a malformed
// query, score, or scenario must surface as an error to the caller, never
// as a crashed goroutine; the paper's cost guarantees are moot if the
// process dies mid-query. Invariant-assertion panics that are unreachable
// under documented caller contracts may be annotated
// `//topklint:allow nopanic <reason>`.
package nopanic

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/analysis"
)

// ServingPackages are the packages on the query-serving path, where a
// panic would take down live traffic.
var ServingPackages = []string{
	"repro/internal/algo",
	"repro/internal/access",
	"repro/internal/state",
	"repro/internal/service",
	"repro/internal/websim",
}

// Analyzer implements the check.
var Analyzer = &analysis.Analyzer{
	Name:     "nopanic",
	Doc:      "forbid panic() in non-test code of the query-serving path; return errors instead",
	Packages: ServingPackages,
	Run:      run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			id, ok := call.Fun.(*ast.Ident)
			if !ok || id.Name != "panic" {
				return true
			}
			if _, ok := pass.TypesInfo.Uses[id].(*types.Builtin); !ok {
				return true
			}
			pass.Reportf(call.Pos(),
				"panic in serving path package %s; return an error instead (or annotate //topklint:allow nopanic <reason> if provably unreachable)",
				pass.Pkg.Path())
			return true
		})
	}
	return nil
}
