package nopanic_test

import (
	"testing"

	"repro/internal/lint/linttest"
	"repro/internal/lint/nopanic"
)

func TestServingPath(t *testing.T) {
	linttest.Run(t, nopanic.Analyzer, "testdata/serving", "repro/internal/algo")
}

func TestOffServingPath(t *testing.T) {
	if diags := linttest.Diagnostics(t, nopanic.Analyzer, "testdata/other", "repro/internal/score"); len(diags) != 0 {
		t.Errorf("panic outside the serving path must not be flagged, got %v", diags)
	}
}
