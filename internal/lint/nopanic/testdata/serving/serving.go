// Fixture for the nopanic analyzer, loaded as repro/internal/algo (a
// serving-path package).
package algo

import "fmt"

func propagate(err error) {
	if err != nil {
		panic(err) // want "panic in serving path package repro/internal/algo"
	}
}

func message() {
	panic(fmt.Sprintf("k=%d out of range", -1)) // want "panic in serving path package"
}

func allowedTrailing() {
	panic("unreachable") //topklint:allow nopanic guarded by constructor validation
}

func allowedPreceding() {
	//topklint:allow nopanic caller contract: index pre-validated by Len
	panic("unreachable")
}

func shadowed() {
	panic := func(v interface{}) { _ = v }
	panic("not the builtin")
}
