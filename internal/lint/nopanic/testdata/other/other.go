// Fixture loaded as repro/internal/score, which is off the serving path:
// the same panics must produce no diagnostics.
package score

func assertRange(i, n int) {
	if i < 0 || i >= n {
		panic("index out of range")
	}
}
