// Package linttest runs topklint analyzers over fixture packages, in the
// spirit of golang.org/x/tools/go/analysis/analysistest: fixture files
// mark expected diagnostics with trailing `// want "regexp"` comments,
// and the harness reports both missed and unexpected diagnostics with
// positions.
package linttest

import (
	"fmt"
	"regexp"
	"strings"
	"testing"

	"repro/internal/lint/analysis"
	"repro/internal/lint/loader"
)

// wantRe matches a `// want "..." ["..." ...]` expectation; each quoted
// string is a regular expression applied to a diagnostic message, and a
// comment with several of them expects that many diagnostics on the line.
var wantRe = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

// Run loads dir as a package named importPath, applies the analyzer, and
// checks its diagnostics against the fixture's want comments.
func Run(t *testing.T, a *analysis.Analyzer, dir, importPath string) {
	t.Helper()
	pkg, err := loader.LoadFiles(dir, importPath)
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	diags, err := analysis.RunPackage(pkg.Fset, pkg.Syntax, pkg.Types, pkg.TypesInfo, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, dir, err)
	}

	expects, err := parseExpectations(pkg)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		matched := false
		for _, e := range expects {
			if !e.hit && e.file == d.Pos.Filename && e.line == d.Pos.Line && e.re.MatchString(d.Message) {
				e.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, e := range expects {
		if !e.hit {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", e.file, e.line, e.re)
		}
	}
}

func parseExpectations(pkg *loader.Package) ([]*expectation, error) {
	var out []*expectation
	for _, f := range pkg.Syntax {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				idx := strings.Index(c.Text, "// want ")
				if idx < 0 {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				ms := wantRe.FindAllStringSubmatch(c.Text[idx:], -1)
				if ms == nil {
					return nil, fmt.Errorf("%s: malformed want comment: %s", pos, c.Text)
				}
				for _, m := range ms {
					re, err := regexp.Compile(m[1])
					if err != nil {
						return nil, fmt.Errorf("%s: bad want regexp: %v", pos, err)
					}
					out = append(out, &expectation{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return out, nil
}

// Diagnostics runs the analyzer over the fixture and returns the raw
// diagnostics, for tests asserting on counts or exact content.
func Diagnostics(t *testing.T, a *analysis.Analyzer, dir, importPath string) []analysis.Diagnostic {
	t.Helper()
	pkg, err := loader.LoadFiles(dir, importPath)
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	diags, err := analysis.RunPackage(pkg.Fset, pkg.Syntax, pkg.Types, pkg.TypesInfo, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, dir, err)
	}
	return diags
}
