package resetcomplete_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/lint/analysis"
	"repro/internal/lint/linttest"
	"repro/internal/lint/resetcomplete"
)

func TestResetcomplete(t *testing.T) {
	linttest.Run(t, resetcomplete.Analyzer, "testdata/pooled", "repro/internal/pooled")
}

// TestFixRoundTrip copies the fixture, applies topklint's mechanical fixes
// (zeroing stubs at the top of Reset), and re-runs the analyzer: every
// diagnostic that carried a fix must be gone, and only the fixless one
// (the missing Reset method) may remain.
func TestFixRoundTrip(t *testing.T) {
	dir := t.TempDir()
	src, err := os.ReadFile(filepath.Join("testdata", "pooled", "pooled.go"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "pooled.go"), src, 0o644); err != nil {
		t.Fatal(err)
	}

	before := linttest.Diagnostics(t, resetcomplete.Analyzer, dir, "repro/internal/pooled")
	var fixable int
	for _, d := range before {
		if d.Fix != nil {
			fixable++
		}
	}
	if fixable == 0 {
		t.Fatalf("fixture produced no fixable diagnostics: %v", before)
	}
	applied, err := analysis.ApplyFixes(before)
	if err != nil {
		t.Fatalf("applying fixes: %v", err)
	}
	if applied != fixable {
		t.Fatalf("applied %d fixes, want %d", applied, fixable)
	}

	after := linttest.Diagnostics(t, resetcomplete.Analyzer, dir, "repro/internal/pooled")
	for _, d := range after {
		if d.Fix != nil {
			t.Errorf("diagnostic with fix survived the fix: %s", d)
		}
		if !strings.Contains(d.Message, "has no Reset method") {
			t.Errorf("unexpected post-fix diagnostic: %s", d)
		}
	}
	if len(after) != len(before)-fixable {
		t.Errorf("got %d diagnostics after fixing, want %d", len(after), len(before)-fixable)
	}

	patched, err := os.ReadFile(filepath.Join(dir, "pooled.go"))
	if err != nil {
		t.Fatal(err)
	}
	for _, stub := range []string{"b.dirty = false", "b.cond = 0"} {
		if !strings.Contains(string(patched), stub) {
			t.Errorf("patched fixture missing zeroing stub %q", stub)
		}
	}
}
