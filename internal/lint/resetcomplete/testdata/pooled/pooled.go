// Fixture for the resetcomplete analyzer: pooled types must reset every
// field on every path of Reset; identity fields carry allow directives.
package pooled

import "sync"

// Buf is pooled through bufPool below; two of its fields are not restored
// on every path.
type Buf struct {
	vals  []int
	n     int
	dirty bool // want "field dirty of pooled type Buf"
	cond  int  // want "field cond of pooled type Buf"
	id    int  //topklint:allow resetcomplete identity assigned at construction, survives recycling (fixture)
}

// Reset misses dirty entirely and only resets cond behind a condition.
func (b *Buf) Reset() {
	b.vals = b.vals[:0]
	b.n = 0
	if b.cond > 0 {
		b.cond = 0
	}
}

var bufPool = sync.Pool{New: func() interface{} { return new(Buf) }}

// GetBuf associates Buf with the pool through the Get type assertion.
func GetBuf() *Buf { return bufPool.Get().(*Buf) }

// PutBuf associates Buf with the pool through the Put argument.
func PutBuf(b *Buf) { bufPool.Put(b) }

var zeros [16]byte

// Annotated is pooled by another package; the directive stands in for the
// cross-package sync.Pool. Its Reset covers every field: clear, copy,
// both arms of an if/else, and a delegated Reset all count.
//
//topklint:pooled
type Annotated struct {
	table map[string]int
	buf   []byte
	next  *Annotated
	state sub
}

func (a *Annotated) Reset() {
	clear(a.table)
	copy(a.buf, zeros[:])
	if a.next != nil {
		a.next = nil
	} else {
		a.next = nil
	}
	a.state.Reset()
}

type sub struct{ n int }

// Reset resets sub; sub itself is never pooled, so its partial coverage
// elsewhere would not be checked.
func (s *sub) Reset() { s.n = 0 }

// Rows shows that loop bodies count: a zero-iteration loop over the
// field's own backing store means there was nothing to clear.
//
//topklint:pooled
type Rows struct {
	seen []map[int]bool
}

func (r *Rows) Reset() {
	for i := range r.seen {
		clear(r.seen[i])
	}
}

type errReset struct{ n int }

// Reset can fail; callers propagate the error.
func (e *errReset) Reset() error { e.n = 0; return nil }

// Fwd delegates its whole reset in a return statement: the delegation
// counts even though it is not an expression statement.
//
//topklint:pooled
type Fwd struct{ inner errReset }

// Reset forwards and propagates the error.
func (f *Fwd) Reset() error { return f.inner.Reset() }

var statePool sync.Pool

// State is pooled but has no Reset at all.
type State struct { // want "pooled type State has no Reset method"
	n int
}

// PutState puts State into its pool.
func PutState(s *State) { statePool.Put(s) }

// Plain is never pooled: its partial Reset is fine.
type Plain struct {
	a, b int
}

// Reset only restores a; Plain is not pooled, so this is not checked.
func (p *Plain) Reset() { p.a = 0 }
