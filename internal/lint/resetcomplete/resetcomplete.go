// Package resetcomplete enforces the pooled-state hygiene invariant:
// every type recycled through a sync.Pool must have a Reset method that
// restores each of its fields on every path, so no query ever observes a
// previous query's state. The runtime pooled-vs-fresh oracle
// (internal/access's reset tests) can only catch a leak the workload
// happens to exercise; this analyzer makes the field inventory itself the
// contract, so a field added later without a Reset assignment fails CI
// before any query runs.
//
// A type is considered pooled when the package places it in a sync.Pool
// (a Put argument or a Get type assertion), or when its declaration is
// annotated `//topklint:pooled` — the cross-package escape hatch for
// types pooled by another layer (access.Session is pooled by the topk
// facade, state.Table and state.Queue by the NC scratch).
//
// A field counts as reset when Reset, on every path, assigns it (directly
// or through an index), passes it to the clear or copy builtins, or
// delegates to the field's own Reset method. Statements inside `if`
// without `else` are conditional and do not count; both arms of
// `if`/`else` must reset the field for the conditional to count. Loop
// bodies count: a zero-iteration loop over the field's own backing store
// means there was nothing to clear. Identity fields that deliberately
// survive recycling (the backend handle, the scenario) are annotated
// `//topklint:allow resetcomplete <reason>` on their declaration.
//
// Diagnostics carry a mechanical fix — a zeroing stub inserted at the top
// of Reset — applied by topklint -fix.
package resetcomplete

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
	"repro/internal/lint/lintutil"
)

// Directive marks a type as pooled by another package's sync.Pool.
const Directive = "//topklint:pooled"

// Analyzer implements the check.
var Analyzer = &analysis.Analyzer{
	Name: "resetcomplete",
	Doc:  "every sync.Pool-recycled type's Reset must restore all fields on every path (pooled state may never leak across queries)",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	pooled := pooledTypes(pass)
	if len(pooled) == 0 {
		return nil
	}
	resets := resetMethods(pass)
	for name, tn := range pooled {
		fd, ok := resets[name]
		if !ok {
			pass.Reportf(tn.pos, "pooled type %s has no Reset method; recycled state must be restored before reuse", name)
			continue
		}
		checkReset(pass, tn, fd)
	}
	return nil
}

// pooledType is one pooled named type of the package.
type pooledType struct {
	obj *types.TypeName
	pos token.Pos
}

func checkReset(pass *analysis.Pass, tn pooledType, fd *ast.FuncDecl) {
	st, ok := tn.obj.Type().Underlying().(*types.Struct)
	if !ok {
		return
	}
	recv := receiverName(fd)
	if recv == "" || fd.Body == nil {
		pass.Reportf(fd.Pos(), "pooled type %s has a Reset that cannot restore state (no receiver or body)", tn.obj.Name())
		return
	}
	reset := map[string]bool{}
	walkGuaranteed(pass, fd.Body.List, recv, reset)
	insertAt := fd.Body.Lbrace + 1
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if reset[f.Name()] {
			continue
		}
		fieldPos := fieldDeclPos(pass, tn.obj.Name(), f.Name())
		if !fieldPos.IsValid() {
			fieldPos = fd.Pos()
		}
		stub := fmt.Sprintf("\n\t%s.%s = %s", recv, f.Name(), zeroExpr(f.Type(), pass.Pkg))
		pass.ReportFixf(fieldPos, insertAt, stub,
			"field %s of pooled type %s is not reset on every path of Reset (cross-query state leak); assign it in Reset or annotate the field //topklint:allow resetcomplete <reason>",
			f.Name(), tn.obj.Name())
	}
}

// walkGuaranteed records into reset the fields restored on every path
// through the statement list.
func walkGuaranteed(pass *analysis.Pass, stmts []ast.Stmt, recv string, reset map[string]bool) {
	for _, s := range stmts {
		switch st := s.(type) {
		case *ast.BlockStmt:
			walkGuaranteed(pass, st.List, recv, reset)
		case *ast.IfStmt:
			if st.Else == nil {
				continue // conditional: does not count
			}
			thenSet := map[string]bool{}
			walkGuaranteed(pass, st.Body.List, recv, thenSet)
			elseSet := map[string]bool{}
			switch e := st.Else.(type) {
			case *ast.BlockStmt:
				walkGuaranteed(pass, e.List, recv, elseSet)
			case *ast.IfStmt:
				walkGuaranteed(pass, []ast.Stmt{e}, recv, elseSet)
			}
			for f := range thenSet {
				if elseSet[f] {
					reset[f] = true
				}
			}
		case *ast.ForStmt:
			walkGuaranteed(pass, st.Body.List, recv, reset)
		case *ast.RangeStmt:
			walkGuaranteed(pass, st.Body.List, recv, reset)
		default:
			recordStmt(pass, s, recv, reset)
		}
	}
}

// recordStmt records the fields a single (non-compound) statement resets.
func recordStmt(pass *analysis.Pass, s ast.Stmt, recv string, reset map[string]bool) {
	switch st := s.(type) {
	case *ast.AssignStmt:
		for _, lhs := range st.Lhs {
			if f := fieldOf(lhs, recv); f != "" {
				reset[f] = true
			}
		}
	case *ast.IncDecStmt:
		if f := fieldOf(st.X, recv); f != "" {
			reset[f] = true
		}
	case *ast.ExprStmt:
		call, ok := st.X.(*ast.CallExpr)
		if !ok {
			return
		}
		// clear(x.f) / copy(x.f, ...) / copy(..., x.f)
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
			if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin && (id.Name == "clear" || id.Name == "copy") {
				for _, arg := range call.Args {
					if f := fieldOf(arg, recv); f != "" {
						reset[f] = true
					}
				}
				return
			}
		}
		// x.f.Reset(...): delegated reset
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Reset" {
			if f := fieldOf(sel.X, recv); f != "" {
				reset[f] = true
			}
		}
	case *ast.ReturnStmt:
		// return x.f.Reset(...): delegation whose error is propagated.
		for _, res := range st.Results {
			call, ok := ast.Unparen(res).(*ast.CallExpr)
			if !ok {
				continue
			}
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Reset" {
				if f := fieldOf(sel.X, recv); f != "" {
					reset[f] = true
				}
			}
		}
	}
}

// fieldOf extracts the receiver field an expression roots in: recv.f,
// recv.f[i], recv.f[i][j], (recv.f)... — or "" when the expression is not
// rooted in a field of recv.
func fieldOf(e ast.Expr, recv string) string {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SelectorExpr:
			if id, ok := ast.Unparen(x.X).(*ast.Ident); ok && id.Name == recv {
				return x.Sel.Name
			}
			e = x.X
		default:
			return ""
		}
	}
}

// receiverName returns the name of the method's receiver variable.
func receiverName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return ""
	}
	name := fd.Recv.List[0].Names[0].Name
	if name == "_" {
		return ""
	}
	return name
}

// pooledTypes finds the package's pooled named types: sync.Pool Put/Get
// associations plus //topklint:pooled annotations.
func pooledTypes(pass *analysis.Pass) map[string]pooledType {
	out := map[string]pooledType{}
	add := func(t types.Type) {
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		named, ok := t.(*types.Named)
		if !ok || named.Obj().Pkg() != pass.Pkg {
			return
		}
		name := named.Obj().Name()
		if _, ok := out[name]; !ok {
			out[name] = pooledType{obj: named.Obj(), pos: named.Obj().Pos()}
		}
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.CallExpr:
				if fn := lintutil.CalleeFunc(pass.TypesInfo, x); fn != nil && fn.FullName() == "(*sync.Pool).Put" && len(x.Args) == 1 {
					if t := pass.TypesInfo.TypeOf(x.Args[0]); t != nil {
						add(t)
					}
				}
			case *ast.TypeAssertExpr:
				call, ok := ast.Unparen(x.X).(*ast.CallExpr)
				if !ok || x.Type == nil {
					return true
				}
				if fn := lintutil.CalleeFunc(pass.TypesInfo, call); fn != nil && fn.FullName() == "(*sync.Pool).Get" {
					if t := pass.TypesInfo.TypeOf(x.Type); t != nil {
						add(t)
					}
				}
			}
			return true
		})
		// //topklint:pooled annotations on type declarations.
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			declAnnotated := hasDirective(gd.Doc)
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				if declAnnotated || hasDirective(ts.Doc) || hasDirective(ts.Comment) {
					if obj, ok := pass.TypesInfo.Defs[ts.Name].(*types.TypeName); ok {
						if named, ok := obj.Type().(*types.Named); ok {
							add(named)
						}
					}
				}
			}
		}
	}
	return out
}

func hasDirective(cg *ast.CommentGroup) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		if c.Text == Directive || strings.HasPrefix(c.Text, Directive+" ") {
			return true
		}
	}
	return false
}

// resetMethods maps type name -> its Reset method declaration.
func resetMethods(pass *analysis.Pass) map[string]*ast.FuncDecl {
	out := map[string]*ast.FuncDecl{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Name.Name != "Reset" || fd.Recv == nil || len(fd.Recv.List) == 0 {
				continue
			}
			t := fd.Recv.List[0].Type
			if star, ok := t.(*ast.StarExpr); ok {
				t = star.X
			}
			if id, ok := t.(*ast.Ident); ok {
				out[id.Name] = fd
			}
		}
	}
	return out
}

// fieldDeclPos finds the declaration position of a struct field, for
// reporting (and allow-directive keying) at the field itself.
func fieldDeclPos(pass *analysis.Pass, typeName, fieldName string) token.Pos {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok || ts.Name.Name != typeName {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				for _, fld := range st.Fields.List {
					for _, name := range fld.Names {
						if name.Name == fieldName {
							return name.Pos()
						}
					}
				}
			}
		}
	}
	return token.NoPos
}

// zeroExpr renders the zero value of a type as Go source, qualified
// relative to the package being analyzed.
func zeroExpr(t types.Type, pkg *types.Package) string {
	switch u := t.Underlying().(type) {
	case *types.Basic:
		info := u.Info()
		switch {
		case info&types.IsBoolean != 0:
			return "false"
		case info&types.IsNumeric != 0:
			return "0"
		case info&types.IsString != 0:
			return `""`
		default:
			return "nil"
		}
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan, *types.Signature, *types.Interface:
		return "nil"
	default:
		return types.TypeString(t, types.RelativeTo(pkg)) + "{}"
	}
}
