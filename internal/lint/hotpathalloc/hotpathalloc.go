// Package hotpathalloc enforces the zero-allocation invariant of the
// serve path. PR 4's 13-allocs/op budget (BENCH_perf.json, gated by
// TestServeAllocGate) holds only while the inner-loop functions — queue
// sift operations, table observation, session billing, the sharing
// layer's lookup path — stay heap-allocation-free; a single escaped
// composite literal multiplies into per-access garbage under load. The
// runtime gate catches the aggregate after the fact; this analyzer
// attributes the cause: it drives the real compiler's escape analysis
// (`go build -gcflags='-m -m'`) over the package and fails on any escape
// diagnostic inside a function annotated `//topklint:hotpath`.
//
// Escapes attributable to error construction (fmt.Errorf, errors.New,
// fmt.Sprintf, fmt.Sprint) or to panic arguments are skipped by rule: in
// this codebase constructing an error means the access was refused or the
// caller contract was violated, which is off the billed steady-state path
// by definition. Any other deliberate allocation (an answer escaping to
// the caller, a grow-on-demand resize) must carry
// `//topklint:allow hotpathalloc <reason>` so the exceptions stay
// auditable.
package hotpathalloc

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"

	"repro/internal/lint/analysis"
	"repro/internal/lint/lintutil"
)

// Directive marks a function whose body must stay heap-allocation-free on
// the steady-state path. It must appear in the function's doc comment.
const Directive = "//topklint:hotpath"

// Analyzer implements the check.
var Analyzer = &analysis.Analyzer{
	Name: "hotpathalloc",
	Doc:  "forbid heap allocations (compiler escape diagnostics) in functions annotated //topklint:hotpath",
	Run:  run,
}

// escapeRe matches one escape diagnostic of `go build -gcflags='-m -m'`.
// With -m -m the compiler emits both an explained variant (trailing colon,
// followed by indented flow lines) and a bare one; matching the bare forms
// and deduplicating keeps one diagnostic per allocation:
//
//	./queue.go:66:19: make([]bool, n) escapes to heap
//	./json.go:48:6: moved to heap: payload
var escapeRe = regexp.MustCompile(`^(.+\.go):(\d+):(\d+): (.* escapes to heap|moved to heap: .*)$`)

// hotFunc is one annotated function with its source extent.
type hotFunc struct {
	name  string
	file  string // base name of the declaring file
	start token.Position
	end   token.Position
}

func run(pass *analysis.Pass) error {
	hot := annotatedFuncs(pass)
	if len(hot) == 0 {
		return nil
	}
	// Every file of a package lives in one directory; compile it there so
	// the fixture trees under testdata (invisible to ./... patterns) build
	// the same way real packages do.
	dir := filepath.Dir(pass.Fset.Position(pass.Files[0].Pos()).Filename)
	out, err := compileEscapes(dir)
	if err != nil {
		return err
	}
	type reported struct {
		file string
		line int
		col  int
		msg  string
	}
	seen := map[reported]bool{}
	for _, raw := range strings.Split(out, "\n") {
		m := escapeRe.FindStringSubmatch(strings.TrimSpace(raw))
		if m == nil {
			continue
		}
		base := filepath.Base(m[1])
		line, _ := strconv.Atoi(m[2])
		col, _ := strconv.Atoi(m[3])
		msg := m[4]
		key := reported{base, line, col, msg}
		if seen[key] {
			continue
		}
		seen[key] = true
		fn := owner(hot, base, line, col)
		if fn == nil {
			continue
		}
		pos, astFile := resolvePos(pass, base, line, col)
		if !pos.IsValid() {
			continue
		}
		if inColdCall(pass.TypesInfo, astFile, pos) {
			continue
		}
		pass.Reportf(pos, "heap allocation in hot path %s: %s (annotate //topklint:allow hotpathalloc <reason> if the escape is deliberate)", fn.name, msg)
	}
	return nil
}

// annotatedFuncs collects the package's //topklint:hotpath functions.
func annotatedFuncs(pass *analysis.Pass) []hotFunc {
	var hot []hotFunc
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			for _, c := range fd.Doc.List {
				if c.Text != Directive && !strings.HasPrefix(c.Text, Directive+" ") {
					continue
				}
				start := pass.Fset.Position(fd.Pos())
				hot = append(hot, hotFunc{
					name:  funcDisplayName(fd),
					file:  filepath.Base(start.Filename),
					start: start,
					end:   pass.Fset.Position(fd.End()),
				})
				break
			}
		}
	}
	return hot
}

// funcDisplayName renders "Type.Method" or "Func" for diagnostics.
func funcDisplayName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name + "." + fd.Name.Name
	}
	return fd.Name.Name
}

// compileEscapes runs the compiler's escape analysis over the package in
// dir and returns its diagnostic output. The build cache replays compiler
// diagnostics, so repeated runs cost one cache probe, not a recompile.
func compileEscapes(dir string) (string, error) {
	cmd := exec.Command("go", "build", "-gcflags=-m -m", ".")
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &out
	if err := cmd.Run(); err != nil {
		// The loader already type-checked this package, so a build failure
		// here is environmental (toolchain, GOFLAGS), not a fixture bug.
		return "", fmt.Errorf("hotpathalloc: go build -gcflags=-m -m in %s: %v\n%s", dir, err, out.String())
	}
	return out.String(), nil
}

// owner returns the annotated function whose extent covers the diagnostic
// position, or nil.
func owner(hot []hotFunc, file string, line, col int) *hotFunc {
	for i := range hot {
		fn := &hot[i]
		if fn.file != file {
			continue
		}
		afterStart := line > fn.start.Line || (line == fn.start.Line && col >= fn.start.Column)
		beforeEnd := line < fn.end.Line || (line == fn.end.Line && col <= fn.end.Column)
		if afterStart && beforeEnd {
			return fn
		}
	}
	return nil
}

// resolvePos converts a compiler (file, line, col) into a token.Pos of the
// pass's FileSet, along with the syntax tree it lands in.
func resolvePos(pass *analysis.Pass, base string, line, col int) (token.Pos, *ast.File) {
	for _, f := range pass.Files {
		tf := pass.Fset.File(f.Pos())
		if tf == nil || filepath.Base(tf.Name()) != base {
			continue
		}
		if line < 1 || line > tf.LineCount() {
			return token.NoPos, nil
		}
		return tf.LineStart(line) + token.Pos(col-1), f
	}
	return token.NoPos, nil
}

// coldCallees are the error-construction functions whose argument escapes
// are cold by rule.
var coldCallees = map[string]bool{
	"fmt.Errorf":  true,
	"fmt.Sprintf": true,
	"fmt.Sprint":  true,
	"errors.New":  true,
}

// inColdCall reports whether pos sits inside a call to an error
// constructor or a panic: escapes there belong to refusal and
// contract-violation paths, not the billed steady state.
func inColdCall(info *types.Info, f *ast.File, pos token.Pos) bool {
	cold := false
	ast.Inspect(f, func(n ast.Node) bool {
		if cold || n == nil {
			return false
		}
		if pos < n.Pos() || pos >= n.End() {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok && isColdCall(info, call) {
			cold = true
			return false
		}
		return true
	})
	return cold
}

func isColdCall(info *types.Info, call *ast.CallExpr) bool {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
		if _, ok := info.Uses[id].(*types.Builtin); ok {
			return true
		}
	}
	fn := lintutil.CalleeFunc(info, call)
	return fn != nil && coldCallees[fn.FullName()]
}
