package hotpathalloc_test

import (
	"testing"

	"repro/internal/lint/hotpathalloc"
	"repro/internal/lint/linttest"
)

func TestHotpathalloc(t *testing.T) {
	linttest.Run(t, hotpathalloc.Analyzer, "testdata/hot", "repro/internal/hot")
}
