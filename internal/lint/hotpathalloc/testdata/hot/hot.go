// Fixture for the hotpathalloc analyzer: escape diagnostics inside
// //topklint:hotpath functions are flagged, cold error-construction
// escapes and unannotated functions are not.
package hot

import (
	"errors"
	"fmt"
)

// Big is large enough that the compiler never stack-allocates an escaping
// instance.
type Big struct {
	Vals [64]int
}

// sink keeps stored values reachable so stores genuinely escape.
var sink *Big

// Leak allocates on its only path.
//
//topklint:hotpath
func Leak() *Big {
	return &Big{} // want "heap allocation in hot path Leak"
}

// Store escapes through a package-level sink.
//
//topklint:hotpath
func Store(v int) {
	b := Big{} // want "heap allocation in hot path Store: moved to heap: b"
	b.Vals[0] = v
	sink = &b
}

// Captured demonstrates closure capture: the local is moved to the heap
// and the escaping func literal is itself an allocation.
//
//topklint:hotpath
func Captured() func() int {
	x := 0              // want "heap allocation in hot path Captured: moved to heap: x"
	return func() int { // want "heap allocation in hot path Captured"
		x++
		return x
	}
}

// Clean is allocation-free: index math over caller-owned memory.
//
//topklint:hotpath
func Clean(vals []int, i int) int {
	if i < 0 || i >= len(vals) {
		return -1
	}
	return vals[i] * 2
}

// ColdError's only escapes are fmt.Errorf and errors.New argument boxing
// on refusal paths, which the analyzer skips by rule.
//
//topklint:hotpath
func ColdError(vals []int, i int) (int, error) {
	if i < 0 || i >= len(vals) {
		return 0, fmt.Errorf("hot: index %d out of range (%d vals)", i, len(vals))
	}
	if vals[i] < 0 {
		return 0, errors.New("hot: negative value")
	}
	return vals[i], nil
}

// Deliberate's allocation escapes to the caller by design and is
// documented with an allow directive.
//
//topklint:hotpath
func Deliberate() *Big {
	//topklint:allow hotpathalloc result escapes to the caller by design (fixture)
	return &Big{}
}

// Unannotated allocates freely; without the directive the analyzer leaves
// it alone.
func Unannotated() *Big {
	return &Big{}
}

// lazySized mirrors the divergence monitor's checkpoint path: per-item
// state is sized lazily on the first observation through a helper the
// compiler inlines, so the escape is attributed to the hot call site.
type lazySized struct {
	vals []int
	n    int
}

func (l *lazySized) grow(n int) {
	l.n = n
	l.vals = make([]int, n)
}

// ObserveBare lazily sizes without an allow annotation: flagged.
//
//topklint:hotpath
func (l *lazySized) ObserveBare(i int) int {
	if l.n == 0 {
		l.grow(8) // want "heap allocation in hot path lazySized.ObserveBare"
	}
	if i < 0 || i >= l.n {
		return -1
	}
	l.vals[i]++
	return l.vals[i]
}

// ObserveAllowed documents the one-time grow at the call site.
//
//topklint:hotpath
func (l *lazySized) ObserveAllowed(i int) int {
	if l.n == 0 {
		//topklint:allow hotpathalloc one-time lazy sizing; every later observation is counter updates only (fixture)
		l.grow(8)
	}
	if i < 0 || i >= l.n {
		return -1
	}
	l.vals[i]++
	return l.vals[i]
}
