// Fixture for the lockdiscipline analyzer: locks held across channel
// operations or blocking calls are flagged; the unlock-wait-relock shape
// used by internal/parallel/live.go is accepted.
package svc

import (
	"sync"
	"time"

	"repro/internal/obs"
)

type coord struct {
	mu      sync.Mutex
	results chan int
}

func (c *coord) badSend(v int) {
	c.mu.Lock()
	c.results <- v // want "channel send while holding c\.mu"
	c.mu.Unlock()
}

func (c *coord) badRecvUnderDefer() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return <-c.results // want "channel receive while holding c\.mu"
}

func (c *coord) badSleep() {
	c.mu.Lock()
	defer c.mu.Unlock()
	time.Sleep(time.Millisecond) // want "call to blocking function while holding c\.mu"
}

func (c *coord) badSelect() {
	c.mu.Lock()
	defer c.mu.Unlock()
	select { // want "blocking select while holding c\.mu"
	case v := <-c.results:
		_ = v
	}
}

func (c *coord) badRange() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for v := range c.results { // want "range over channel while holding c\.mu"
		_ = v
	}
}

func (c *coord) badTransitive() {
	c.mu.Lock()
	c.drain() // want "call to drain \(may block\) while holding c\.mu"
	c.mu.Unlock()
}

func (c *coord) drain() { <-c.results }

// goodUnlockWaitRelock is the live.go coordinator shape: the lock is
// released around the wait.
func (c *coord) goodUnlockWaitRelock() int {
	c.mu.Lock()
	c.mu.Unlock()
	v := <-c.results
	c.mu.Lock()
	defer c.mu.Unlock()
	return v
}

// goodSpawn launches the send on another goroutine, which does not hold
// this goroutine's lock.
func (c *coord) goodSpawn() {
	c.mu.Lock()
	defer c.mu.Unlock()
	go func() { c.results <- 1 }()
}

// goodNonBlockingSelect has a default clause and cannot stall.
func (c *coord) goodNonBlockingSelect() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	select {
	case v := <-c.results:
		return v
	default:
		return 0
	}
}

// goodUnlocked performs the same waits with no lock held.
func (c *coord) goodUnlocked() int {
	time.Sleep(time.Millisecond)
	return <-c.results
}

// Observer emissions under a lock couple every producer sharing the lock
// to the observer's latency; events must be collected under the lock and
// emitted after release.
type emitter struct {
	mu sync.Mutex
	o  obs.Observer
}

func (e *emitter) badEmit() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.o.RequestShed() // want "observer emission \(RequestShed\) while holding e\.mu"
}

func (e *emitter) badEmitInBranch(open bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if open {
		e.o.BreakerTransition(obs.Sorted, 0, obs.BreakerClosed, obs.BreakerOpen) // want "observer emission \(BreakerTransition\) while holding e\.mu"
	}
}

// goodEmitAfterUnlock is the required shape: decide under the lock, emit
// after release.
func (e *emitter) goodEmitAfterUnlock() {
	e.mu.Lock()
	shed := true
	e.mu.Unlock()
	if shed {
		e.o.RequestShed()
	}
}

// goodConcreteCall invokes a concrete observer implementation, whose
// latency is known and bounded, not the opaque interface.
func (e *emitter) goodConcreteCall(tr *obs.QueryTrace) {
	e.mu.Lock()
	defer e.mu.Unlock()
	tr.RequestShed()
}

// twoLocks reports one diagnostic per held mutex.
type pair struct {
	a, b sync.Mutex
	ch   chan int
}

func (p *pair) badBoth() {
	p.a.Lock()
	p.b.Lock()
	p.ch <- 1 // want "channel send while holding p\.a" "channel send while holding p\.b"
	p.b.Unlock()
	p.a.Unlock()
}
