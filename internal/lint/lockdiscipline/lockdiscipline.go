// Package lockdiscipline flags sync.Mutex/RWMutex locks held across
// operations that can block indefinitely: channel sends and receives,
// blocking selects, ranges over channels, and calls that reach the
// network or synchronization waits. In the live execution pipeline
// (internal/parallel/live.go) and the service plan cache
// (internal/service), a lock held across a channel operation deadlocks
// the coordinator the moment a completion cannot be delivered — the
// correct shape is the existing unlock-wait-relock pattern, which this
// analyzer accepts.
//
// Calls to obs.Observer interface methods are treated the same way: an
// observer's implementation is unknown at the call site, so emitting an
// event under a lock couples every producer sharing that lock to the
// observer's latency. State holders collect events under the lock and
// emit after release (see access.BreakerSet.Record, which returns
// transitions to its caller).
//
// The analysis is a pragmatic linear scan per function body: it tracks
// which mutexes are locked through straight-line code, descends into
// branch and loop bodies with a copy of the lock state, treats
// `defer mu.Unlock()` as scope-exit (so it does not clear the inline
// state), analyzes each function literal as its own root (their execution
// context is unknown), and skips goroutine bodies (a spawned goroutine
// does not hold the spawner's lock).
package lockdiscipline

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint/analysis"
	"repro/internal/lint/lintutil"
)

// Analyzer implements the check.
var Analyzer = &analysis.Analyzer{
	Name: "lockdiscipline",
	Doc:  "no mutex may be held across channel operations or calls that may block",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	blocking := lintutil.BlockingFuncs(pass.Pkg, pass.TypesInfo, pass.Files)
	for body := range lintutil.FuncBodies(pass.TypesInfo, pass.Files) {
		s := &scanner{pass: pass, blocking: blocking}
		s.block(body, map[string]token.Pos{})
	}
	return nil
}

type scanner struct {
	pass     *analysis.Pass
	blocking map[*types.Func]bool
}

// mutexMethod returns the lock identity key and method name when the call
// is X.Lock/RLock/Unlock/RUnlock on a sync.Mutex or sync.RWMutex.
func (s *scanner) mutexMethod(call *ast.CallExpr) (key, method string, ok bool) {
	sel, selOK := call.Fun.(*ast.SelectorExpr)
	if !selOK {
		return "", "", false
	}
	fn, fnOK := s.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !fnOK || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", "", false
	}
	switch fn.Name() {
	case "Lock", "Unlock", "RLock", "RUnlock":
		recv := fn.Type().(*types.Signature).Recv()
		if recv == nil {
			return "", "", false
		}
		return lintutil.FormatNode(s.pass.Fset, sel.X), fn.Name(), true
	}
	return "", "", false
}

// block scans a statement list, threading the locked set through
// straight-line statements.
func (s *scanner) block(b *ast.BlockStmt, locked map[string]token.Pos) {
	for _, st := range b.List {
		s.stmt(st, locked)
	}
}

func copyLocked(locked map[string]token.Pos) map[string]token.Pos {
	cp := make(map[string]token.Pos, len(locked))
	for k, v := range locked {
		cp[k] = v
	}
	return cp
}

func (s *scanner) stmt(st ast.Stmt, locked map[string]token.Pos) {
	switch x := st.(type) {
	case *ast.ExprStmt:
		if call, ok := x.X.(*ast.CallExpr); ok {
			if key, method, ok := s.mutexMethod(call); ok {
				switch method {
				case "Lock", "RLock":
					locked[key] = call.Pos()
				case "Unlock", "RUnlock":
					delete(locked, key)
				}
				return
			}
		}
		s.checkExpr(x.X, locked)
	case *ast.SendStmt:
		s.flag(x.Pos(), "channel send", locked)
	case *ast.DeferStmt:
		// defer mu.Unlock() releases at scope exit; it does not change the
		// inline lock state. Other deferred work runs after the function's
		// blocking operations anyway.
	case *ast.GoStmt:
		// A spawned goroutine does not hold the spawner's lock, and
		// launching is non-blocking. The goroutine body is analyzed as its
		// own root by run().
	case *ast.SelectStmt:
		if len(locked) > 0 && lintutil.IsBlockingSelect(x) {
			s.flag(x.Pos(), "blocking select", locked)
		}
		for _, cl := range x.Body.List {
			if cc, ok := cl.(*ast.CommClause); ok {
				inner := copyLocked(locked)
				for _, st := range cc.Body {
					s.stmt(st, inner)
				}
			}
		}
	case *ast.BlockStmt:
		s.block(x, locked)
	case *ast.IfStmt:
		if x.Init != nil {
			s.stmt(x.Init, locked)
		}
		s.checkExpr(x.Cond, locked)
		s.block(x.Body, copyLocked(locked))
		if x.Else != nil {
			s.stmt(x.Else, copyLocked(locked))
		}
	case *ast.ForStmt:
		if x.Init != nil {
			s.stmt(x.Init, locked)
		}
		if x.Cond != nil {
			s.checkExpr(x.Cond, locked)
		}
		s.block(x.Body, copyLocked(locked))
	case *ast.RangeStmt:
		if lintutil.IsChanRange(s.pass.TypesInfo, x) {
			s.flag(x.Pos(), "range over channel", locked)
		}
		s.block(x.Body, copyLocked(locked))
	case *ast.SwitchStmt:
		if x.Init != nil {
			s.stmt(x.Init, locked)
		}
		if x.Tag != nil {
			s.checkExpr(x.Tag, locked)
		}
		for _, cl := range x.Body.List {
			if cc, ok := cl.(*ast.CaseClause); ok {
				inner := copyLocked(locked)
				for _, st := range cc.Body {
					s.stmt(st, inner)
				}
			}
		}
	case *ast.TypeSwitchStmt:
		for _, cl := range x.Body.List {
			if cc, ok := cl.(*ast.CaseClause); ok {
				inner := copyLocked(locked)
				for _, st := range cc.Body {
					s.stmt(st, inner)
				}
			}
		}
	case *ast.LabeledStmt:
		s.stmt(x.Stmt, locked)
	case *ast.AssignStmt:
		for _, e := range x.Rhs {
			s.checkExpr(e, locked)
		}
	case *ast.ReturnStmt:
		for _, e := range x.Results {
			s.checkExpr(e, locked)
		}
	case *ast.DeclStmt:
		if gd, ok := x.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						s.checkExpr(e, locked)
					}
				}
			}
		}
	}
}

// checkExpr flags blocking operations inside an expression evaluated
// while locks are held: channel receives and calls to blocking functions.
// Nested function literals are skipped — they are separate roots.
func (s *scanner) checkExpr(e ast.Expr, locked map[string]token.Pos) {
	if len(locked) == 0 {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				s.flag(x.Pos(), "channel receive", locked)
			}
		case *ast.CallExpr:
			if lintutil.IsBlockingCall(s.pass.TypesInfo, x) {
				s.flag(x.Pos(), "call to blocking function", locked)
			} else if fn := lintutil.CalleeFunc(s.pass.TypesInfo, x); fn != nil {
				if fn.Pkg() == s.pass.Pkg && s.blocking[fn] {
					s.flag(x.Pos(), "call to "+fn.Name()+" (may block)", locked)
				} else if isObserverEmit(fn) {
					s.flag(x.Pos(), "observer emission ("+fn.Name()+")", locked)
				}
			}
		}
		return true
	})
}

// isObserverEmit reports whether fn is an interface method of
// repro/internal/obs — an event emission into an observer of unknown
// implementation. Emitting under a lock serializes every event producer
// sharing that lock behind the slowest observer (and a blocking observer
// wedges them all): collect events under the lock, emit after release —
// the shape access.BreakerSet.Record uses, returning transitions to the
// caller instead of emitting them.
func isObserverEmit(fn *types.Func) bool {
	if fn.Pkg() == nil || fn.Pkg().Path() != "repro/internal/obs" {
		return false
	}
	recv := fn.Type().(*types.Signature).Recv()
	return recv != nil && types.IsInterface(recv.Type())
}

func (s *scanner) flag(pos token.Pos, what string, locked map[string]token.Pos) {
	for key, at := range locked {
		s.pass.Reportf(pos,
			"%s while holding %s (locked at line %d); release the lock around blocking operations",
			what, key, s.pass.Fset.Position(at).Line)
	}
}
