package lockdiscipline_test

import (
	"testing"

	"repro/internal/lint/linttest"
	"repro/internal/lint/lockdiscipline"
)

func TestLockDiscipline(t *testing.T) {
	linttest.Run(t, lockdiscipline.Analyzer, "testdata/svc", "repro/internal/svc")
}
