// Package ctxfirst requires exported blocking APIs in the packages that
// talk to real Web sources or spawn goroutines — internal/websim,
// internal/parallel, internal/service — to accept a context.Context as
// their first parameter. The paper's middleware issues network accesses
// that can stall on a slow source; under production traffic every such
// call must be cancellable, and Go's convention is an explicit leading
// ctx. The analyzer also flags any function (blocking or not) that takes
// a context in a non-first position.
package ctxfirst

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/analysis"
	"repro/internal/lint/lintutil"
)

// Analyzer implements the check.
var Analyzer = &analysis.Analyzer{
	Name: "ctxfirst",
	Doc:  "exported blocking APIs must take context.Context as their first parameter",
	Packages: []string{
		"repro/internal/websim",
		"repro/internal/parallel",
		"repro/internal/service",
	},
	Run: run,
}

func run(pass *analysis.Pass) error {
	blocking := lintutil.BlockingFuncs(pass.Pkg, pass.TypesInfo, pass.Files)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if fn == nil {
				continue
			}
			sig := fn.Type().(*types.Signature)
			if pos := ctxParamIndex(sig); pos > 0 {
				pass.Reportf(fd.Name.Pos(),
					"%s takes context.Context as parameter %d; context must be the first parameter", fd.Name.Name, pos+1)
				continue
			}
			if !exportedAPI(fn, fd) || !blocking[fn] || isServeHTTP(sig, fd) {
				continue
			}
			if ctxParamIndex(sig) != 0 {
				pass.Reportf(fd.Name.Pos(),
					"exported %s may block (channel operation or network/synchronization call) but has no leading context.Context parameter", fd.Name.Name)
			}
		}
	}
	return nil
}

// ctxParamIndex returns the position of the context.Context parameter, or
// -1 when the signature has none.
func ctxParamIndex(sig *types.Signature) int {
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		if lintutil.IsContextType(params.At(i).Type()) {
			return i
		}
	}
	return -1
}

// exportedAPI reports whether the function is part of the package's
// surface: an exported function, or an exported method on an exported
// type.
func exportedAPI(fn *types.Func, fd *ast.FuncDecl) bool {
	if !fn.Exported() {
		return false
	}
	if fd.Recv == nil {
		return true
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return false
	}
	t := recv.Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Exported()
}

// isServeHTTP exempts http.Handler's ServeHTTP — its signature is fixed
// by the interface and the context travels inside *http.Request.
func isServeHTTP(sig *types.Signature, fd *ast.FuncDecl) bool {
	if fd.Name.Name != "ServeHTTP" || fd.Recv == nil || sig.Params().Len() != 2 {
		return false
	}
	p0, ok := sig.Params().At(0).Type().(*types.Named)
	if !ok || p0.Obj().Pkg() == nil || p0.Obj().Pkg().Path() != "net/http" || p0.Obj().Name() != "ResponseWriter" {
		return false
	}
	p1, ok := sig.Params().At(1).Type().(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := p1.Elem().(*types.Named)
	return ok && named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == "net/http" && named.Obj().Name() == "Request"
}
