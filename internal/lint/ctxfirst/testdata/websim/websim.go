// Fixture for the ctxfirst analyzer, loaded as repro/internal/websim (a
// scoped package).
package websim

import (
	"context"
	"net/http"
	"time"
)

// Blocking sleeps — a blocking primitive — with no context.
func Blocking() { time.Sleep(time.Millisecond) } // want "exported Blocking may block"

// Good takes a leading context.
func Good(ctx context.Context) { time.Sleep(time.Millisecond) }

// WrongOrder has a context, just not first: flagged on any function.
func WrongOrder(n int, ctx context.Context) {} // want "WrongOrder takes context.Context as parameter 2"

func unexportedBlocking() { time.Sleep(time.Millisecond) }

// Pure is exported but cannot block.
func Pure(a, b int) int { return a + b }

// Client models the real websim client.
type Client struct{ httpc *http.Client }

// Fetch blocks on the network through a method value.
func (c *Client) Fetch(url string) error { // want "exported Fetch may block"
	_, err := c.httpc.Get(url)
	return err
}

// Transitive blocks only through a same-package helper.
func Transitive(url string) error { // want "exported Transitive may block"
	return helper(url)
}

func helper(url string) error {
	_, err := http.Get(url)
	return err
}

// Waits blocks on a channel receive.
func Waits(ch chan int) int { return <-ch } // want "exported Waits may block"

// Spawner only launches a goroutine; the send happens off this call's
// stack, so Spawner itself is non-blocking.
func Spawner(ch chan int) {
	go func() { ch <- 1 }()
}

// Server carries the exempt ServeHTTP signature.
type Server struct{}

// ServeHTTP is fixed by http.Handler; the context rides in the request.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	time.Sleep(time.Millisecond)
}
