package ctxfirst_test

import (
	"testing"

	"repro/internal/lint/ctxfirst"
	"repro/internal/lint/linttest"
)

func TestWebsim(t *testing.T) {
	linttest.Run(t, ctxfirst.Analyzer, "testdata/websim", "repro/internal/websim")
}

func TestOutOfScopePackage(t *testing.T) {
	if diags := linttest.Diagnostics(t, ctxfirst.Analyzer, "testdata/websim", "repro/internal/algo"); len(diags) != 0 {
		t.Errorf("ctxfirst must only cover websim/parallel/service, got %v", diags)
	}
}
