// Package poolpair enforces the Get/Put discipline around sync.Pool:
// every value taken from a pool must go back. A dropped pooled value is
// not a crash — the GC collects it — which is exactly why it survives
// review: the pool silently degrades into an allocator and the serve
// path's allocation budget erodes without any test failing.
//
// For each pool.Get whose result is bound to a variable, the analyzer
// checks that the value is discharged:
//
//   - a deferred Put (or deferred sink call) covers every exit, or
//   - on each return path in the variable's scope, the value was Put,
//     handed to a same-package sink (a function that Puts its parameter,
//     like a putBuf helper), sent on a channel, stored into a field or
//     global, or is part of the return value (ownership transfer).
//
// Path sensitivity is positional: a discharge counts for the returns
// that follow it in the source. That is deliberately simple, and it
// catches the classic leak — an early error return between Get and Put.
//
// Additionally, when the asserted type has a Reset method, the function
// must call it before the value is reused: pool.New-fresh and recycled
// values must be indistinguishable, and Reset is what erases the
// previous query. Deliberate exceptions carry
// `//topklint:allow poolpair <reason>`.
package poolpair

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint/analysis"
	"repro/internal/lint/lintutil"
)

// Analyzer implements the check.
var Analyzer = &analysis.Analyzer{
	Name: "poolpair",
	Doc:  "every sync.Pool Get must be paired with a Put (or ownership transfer) on all return paths, with Reset before reuse",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	sinks := sinkFuncs(pass)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd, sinks)
		}
	}
	return nil
}

// getSite is one pool.Get whose result is bound to a variable.
type getSite struct {
	assign   *ast.AssignStmt
	scope    ast.Node // subtree in which the variable is live
	v        *types.Var
	asserted types.Type // nil when the result is not type-asserted
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl, sinks map[*types.Func]map[int]bool) {
	var sites []getSite
	ifInits := map[ast.Stmt]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.IfStmt:
			if a, ok := x.Init.(*ast.AssignStmt); ok {
				ifInits[a] = true
				if s := getSiteOf(pass, a); s != nil {
					s.scope = x
					sites = append(sites, *s)
				}
			}
		case *ast.AssignStmt:
			if !ifInits[x] {
				if s := getSiteOf(pass, x); s != nil {
					s.scope = fd.Body
					sites = append(sites, *s)
				}
			}
		case *ast.ExprStmt:
			if call, ok := ast.Unparen(x.X).(*ast.CallExpr); ok && isPoolGet(pass.TypesInfo, call) {
				pass.Reportf(x.Pos(), "result of pool.Get is discarded: the pooled value can never be Put back")
			}
		}
		return true
	})
	for _, s := range sites {
		checkSite(pass, &s, sinks)
	}
}

// getSiteOf recognizes `v := pool.Get().(*T)`, the comma-ok form, and the
// assert-free `v := pool.Get()`.
func getSiteOf(pass *analysis.Pass, a *ast.AssignStmt) *getSite {
	if len(a.Rhs) != 1 || len(a.Lhs) == 0 {
		return nil
	}
	rhs := ast.Unparen(a.Rhs[0])
	var asserted types.Type
	var call *ast.CallExpr
	if ta, ok := rhs.(*ast.TypeAssertExpr); ok && ta.Type != nil {
		c, ok := ast.Unparen(ta.X).(*ast.CallExpr)
		if !ok {
			return nil
		}
		call = c
		asserted = pass.TypesInfo.TypeOf(ta.Type)
	} else if c, ok := rhs.(*ast.CallExpr); ok {
		call = c
	} else {
		return nil
	}
	if !isPoolGet(pass.TypesInfo, call) {
		return nil
	}
	id, ok := a.Lhs[0].(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	v, _ := pass.TypesInfo.Defs[id].(*types.Var)
	if v == nil {
		v, _ = pass.TypesInfo.Uses[id].(*types.Var)
	}
	if v == nil {
		return nil
	}
	return &getSite{assign: a, v: v, asserted: asserted}
}

func checkSite(pass *analysis.Pass, s *getSite, sinks map[*types.Func]map[int]bool) {
	info := pass.TypesInfo
	getPos := s.assign.Pos()
	covered := false // a deferred Put/sink discharges every exit
	resetCalled := false
	var discharges []token.Pos
	var returns []*ast.ReturnStmt

	ast.Inspect(s.scope, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.DeferStmt:
			if dischargesVar(pass, x.Call, s.v, sinks) {
				covered = true
			}
		case *ast.CallExpr:
			if dischargesVar(pass, x, s.v, sinks) {
				discharges = append(discharges, x.Pos())
			}
			if sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Reset" && rootObj(info, sel.X) == s.v {
				resetCalled = true
			}
		case *ast.SendStmt:
			if rootObj(info, x.Value) == s.v {
				discharges = append(discharges, x.Pos())
			}
		case *ast.AssignStmt:
			for i, rhs := range x.Rhs {
				if !usesVar(info, rhs, s.v) {
					continue
				}
				if i < len(x.Lhs) {
					switch ast.Unparen(x.Lhs[i]).(type) {
					case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
						discharges = append(discharges, x.Pos())
					}
				}
			}
		case *ast.ReturnStmt:
			if x.Pos() > getPos {
				returns = append(returns, x)
			}
		}
		return true
	})

	if covered {
		// Every exit Puts; only the Reset rule remains.
	} else {
		leaked := false
		for _, r := range returns {
			if returnsVar(info, r, s.v) {
				continue
			}
			if anyBefore(discharges, getPos, r.Pos()) {
				continue
			}
			leaked = true
			pass.Reportf(r.Pos(), "pooled %s is dropped on this return path: no Put, sink call, or ownership transfer since pool.Get (annotate //topklint:allow poolpair <reason> if the drop is deliberate)", s.v.Name())
		}
		if !leaked && len(returns) == 0 && len(discharges) == 0 {
			pass.Reportf(getPos, "pooled %s is never returned to the pool: no Put, defer, sink call, or ownership transfer in scope", s.v.Name())
		}
	}

	if s.asserted != nil && hasResetMethod(s.asserted) && !resetCalled {
		pass.Reportf(getPos, "pooled %s is reused without Reset: recycled and fresh values must be indistinguishable (call %s.Reset before use)", s.v.Name(), s.v.Name())
	}
}

// dischargesVar reports whether the call returns v to a pool: a direct
// (*sync.Pool).Put, or a same-package sink whose parameter is Put.
func dischargesVar(pass *analysis.Pass, call *ast.CallExpr, v *types.Var, sinks map[*types.Func]map[int]bool) bool {
	fn := lintutil.CalleeFunc(pass.TypesInfo, call)
	if fn == nil {
		return false
	}
	if fn.FullName() == "(*sync.Pool).Put" {
		return len(call.Args) == 1 && rootObj(pass.TypesInfo, call.Args[0]) == v
	}
	if sinkParams := sinks[fn]; sinkParams != nil {
		for i, arg := range call.Args {
			if sinkParams[i] && rootObj(pass.TypesInfo, arg) == v {
				return true
			}
		}
	}
	return false
}

// sinkFuncs maps each package function that Puts one of its parameters
// into a sync.Pool to the set of parameter indices it discharges.
func sinkFuncs(pass *analysis.Pass) map[*types.Func]map[int]bool {
	out := map[*types.Func]map[int]bool{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Type.Params == nil {
				continue
			}
			fn, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if fn == nil {
				continue
			}
			// Parameter objects, in declaration order.
			var params []*types.Var
			for _, field := range fd.Type.Params.List {
				for _, name := range field.Names {
					if obj, ok := pass.TypesInfo.Defs[name].(*types.Var); ok {
						params = append(params, obj)
					}
				}
			}
			if len(params) == 0 {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				callee := lintutil.CalleeFunc(pass.TypesInfo, call)
				if callee == nil || callee.FullName() != "(*sync.Pool).Put" || len(call.Args) != 1 {
					return true
				}
				root := rootObj(pass.TypesInfo, call.Args[0])
				for i, p := range params {
					if root == p {
						if out[fn] == nil {
							out[fn] = map[int]bool{}
						}
						out[fn][i] = true
					}
				}
				return true
			})
		}
	}
	return out
}

// anyBefore reports whether some position in ps lies in (lo, hi).
func anyBefore(ps []token.Pos, lo, hi token.Pos) bool {
	for _, p := range ps {
		if p > lo && p < hi {
			return true
		}
	}
	return false
}

// returnsVar reports whether the return statement's results mention v —
// returning the value (or a struct wrapping it) transfers ownership.
func returnsVar(info *types.Info, r *ast.ReturnStmt, v *types.Var) bool {
	for _, res := range r.Results {
		if usesVar(info, res, v) {
			return true
		}
	}
	return false
}

// usesVar reports whether the expression mentions v.
func usesVar(info *types.Info, e ast.Expr, v *types.Var) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == v {
			found = true
			return false
		}
		return true
	})
	return found
}

// rootObj resolves an expression to the variable it names: an identifier,
// possibly parenthesized or behind a unary &.
func rootObj(info *types.Info, e ast.Expr) types.Object {
	e = ast.Unparen(e)
	if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.AND {
		e = ast.Unparen(u.X)
	}
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	return info.Uses[id]
}

// isPoolGet reports whether the call is (*sync.Pool).Get.
func isPoolGet(info *types.Info, call *ast.CallExpr) bool {
	fn := lintutil.CalleeFunc(info, call)
	return fn != nil && fn.FullName() == "(*sync.Pool).Get"
}

// hasResetMethod reports whether the (possibly pointer) type declares a
// Reset method.
func hasResetMethod(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	for i := 0; i < named.NumMethods(); i++ {
		if named.Method(i).Name() == "Reset" {
			return true
		}
	}
	return false
}
