package poolpair_test

import (
	"testing"

	"repro/internal/lint/linttest"
	"repro/internal/lint/poolpair"
)

func TestPoolpair(t *testing.T) {
	linttest.Run(t, poolpair.Analyzer, "testdata/pool", "repro/internal/pool")
}
