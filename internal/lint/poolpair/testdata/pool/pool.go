// Fixture for the poolpair analyzer: pool.Get must pair with Put (or an
// ownership transfer) on every return path, with Reset before reuse.
package pool

import (
	"errors"
	"sync"
)

// Conn is the pooled unit.
type Conn struct{ n int }

// Reset erases the previous use.
func (c *Conn) Reset() { c.n = 0 }

var connPool = sync.Pool{New: func() interface{} { return new(Conn) }}

var errBoom = errors.New("boom")

// WithDefer discharges through a deferred Put: every exit is covered.
func WithDefer() int {
	c := connPool.Get().(*Conn)
	defer connPool.Put(c)
	c.Reset()
	return c.n
}

// WithPut discharges with an explicit Put before the only return.
func WithPut() int {
	c := connPool.Get().(*Conn)
	c.Reset()
	n := c.n
	connPool.Put(c)
	return n
}

// Acquire transfers ownership to the caller.
func Acquire() *Conn {
	c := connPool.Get().(*Conn)
	c.Reset()
	return c
}

// release is a sink: it Puts its parameter (conditionally, by policy).
func release(c *Conn) {
	if c.n < 1<<20 {
		connPool.Put(c)
	}
}

// WithSink discharges through the same-package sink.
func WithSink() int {
	c := connPool.Get().(*Conn)
	c.Reset()
	n := c.n
	release(c)
	return n
}

// WithDeferSink defers the sink call: every exit is covered.
func WithDeferSink() int {
	c := connPool.Get().(*Conn)
	defer release(c)
	c.Reset()
	return c.n
}

// registry holds transferred connections.
type registry struct{ conns []*Conn }

var reg registry

// Register transfers ownership into a package-level structure.
func Register() {
	c := connPool.Get().(*Conn)
	c.Reset()
	reg.conns = append(reg.conns, c)
}

// LeakOnError drops the pooled value on its error path: the classic bug.
func LeakOnError(fail bool) (*Conn, error) {
	c := connPool.Get().(*Conn)
	c.Reset()
	if fail {
		return nil, errBoom // want "dropped on this return path"
	}
	return c, nil
}

// CommaOkLeak mirrors the engine's acquire shape: the comma-ok Get in an
// if-init, with an error path that drops the recycled state.
func CommaOkLeak(fail bool) (*Conn, error) {
	if c, ok := connPool.Get().(*Conn); ok {
		c.Reset()
		if fail {
			return nil, errBoom // want "dropped on this return path"
		}
		return c, nil
	}
	return new(Conn), nil
}

// NoReset recycles without erasing the previous use.
func NoReset() int {
	c := connPool.Get().(*Conn) // want "reused without Reset"
	defer connPool.Put(c)
	return c.n
}

// FallsOff never discharges the value at all.
func FallsOff() {
	c := connPool.Get().(*Conn) // want "never returned to the pool"
	c.Reset()
	c.n++
}

// Dropped discards the Get result outright.
func Dropped() {
	connPool.Get() // want "discarded"
}

// DeliberateDrop documents its policy drop with an allow directive.
func DeliberateDrop(big bool) {
	c := connPool.Get().(*Conn)
	c.Reset()
	if big {
		//topklint:allow poolpair oversized values are dropped by policy (fixture)
		return
	}
	connPool.Put(c)
}
