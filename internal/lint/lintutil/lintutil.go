// Package lintutil holds the type- and control-flow helpers the topklint
// analyzers share: resolving callees, classifying calls and statements
// that may block, and computing the same-package transitive closure of
// blocking functions.
package lintutil

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
)

// CalleeFunc resolves a call expression to the *types.Func it invokes
// (package function or method), or nil for builtins, function values, and
// type conversions.
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// blockingCallees lists well-known external functions and methods that
// block the calling goroutine: timers, sync waits, and net/http client
// round trips (the repository's Web-source accesses).
var blockingCallees = map[string]bool{
	"time.Sleep":                    true,
	"(*sync.WaitGroup).Wait":        true,
	"(*sync.Cond).Wait":             true,
	"(*net/http.Client).Do":         true,
	"(*net/http.Client).Get":        true,
	"(*net/http.Client).Head":       true,
	"(*net/http.Client).Post":       true,
	"(*net/http.Client).PostForm":   true,
	"net/http.Get":                  true,
	"net/http.Head":                 true,
	"net/http.Post":                 true,
	"net/http.PostForm":             true,
	"(net.Conn).Read":               true,
	"(net.Conn).Write":              true,
	"(*os/exec.Cmd).Run":            true,
	"(*os/exec.Cmd).Wait":           true,
	"(*os/exec.Cmd).CombinedOutput": true,
	"(*os/exec.Cmd).Output":         true,
}

// IsBlockingCall reports whether the call is to a known-blocking external
// function or method.
func IsBlockingCall(info *types.Info, call *ast.CallExpr) bool {
	fn := CalleeFunc(info, call)
	if fn == nil {
		return false
	}
	return blockingCallees[fn.FullName()]
}

// IsChanRecv reports whether the expression is a channel receive.
func IsChanRecv(e ast.Expr) bool {
	u, ok := ast.Unparen(e).(*ast.UnaryExpr)
	return ok && u.Op == token.ARROW
}

// IsChanRange reports whether the range statement iterates over a channel.
func IsChanRange(info *types.Info, rs *ast.RangeStmt) bool {
	if rs.X == nil {
		return false
	}
	t := info.TypeOf(rs.X)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

// IsBlockingSelect reports whether the select statement can block, i.e.
// has no default clause.
func IsBlockingSelect(sel *ast.SelectStmt) bool {
	for _, cl := range sel.Body.List {
		if cc, ok := cl.(*ast.CommClause); ok && cc.Comm == nil {
			return false
		}
	}
	return true
}

// FuncBodies pairs every function-like body in the package — declarations
// and function literals — with the object it defines (nil for literals).
func FuncBodies(info *types.Info, files []*ast.File) map[*ast.BlockStmt]*types.Func {
	out := map[*ast.BlockStmt]*types.Func{}
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch d := n.(type) {
			case *ast.FuncDecl:
				if d.Body != nil {
					fn, _ := info.Defs[d.Name].(*types.Func)
					out[d.Body] = fn
				}
			case *ast.FuncLit:
				out[d.Body] = nil
			}
			return true
		})
	}
	return out
}

// bodyBlocksPrimitively reports whether the body directly contains a
// blocking construct: a channel operation, a blocking select, or a call
// to a known-blocking external function. Goroutine launches (`go ...`)
// are skipped — spawning never blocks the caller — and nested function
// literals are included, since inline closures run on the caller's
// goroutine in this codebase's style.
func bodyBlocksPrimitively(info *types.Info, body *ast.BlockStmt) bool {
	blocking := false
	ast.Inspect(body, func(n ast.Node) bool {
		if blocking {
			return false
		}
		switch s := n.(type) {
		case *ast.GoStmt:
			return false
		case *ast.SendStmt:
			blocking = true
		case *ast.UnaryExpr:
			if s.Op == token.ARROW {
				blocking = true
			}
		case *ast.SelectStmt:
			if IsBlockingSelect(s) {
				blocking = true
				return false
			}
		case *ast.RangeStmt:
			if IsChanRange(info, s) {
				blocking = true
			}
		case *ast.CallExpr:
			if IsBlockingCall(info, s) {
				blocking = true
			}
		}
		return !blocking
	})
	return blocking
}

// BlockingFuncs computes the set of package-level functions and methods
// that may block: those whose bodies block primitively, plus — to a fixed
// point — those that call a same-package function already in the set.
func BlockingFuncs(pkg *types.Package, info *types.Info, files []*ast.File) map[*types.Func]bool {
	bodies := map[*types.Func]*ast.BlockStmt{}
	for body, fn := range FuncBodies(info, files) {
		if fn != nil {
			bodies[fn] = body
		}
	}
	blocking := map[*types.Func]bool{}
	for fn, body := range bodies {
		if bodyBlocksPrimitively(info, body) {
			blocking[fn] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for fn, body := range bodies {
			if blocking[fn] {
				continue
			}
			ast.Inspect(body, func(n ast.Node) bool {
				if blocking[fn] {
					return false
				}
				if _, ok := n.(*ast.GoStmt); ok {
					return false
				}
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				callee := CalleeFunc(info, call)
				if callee != nil && callee.Pkg() == pkg && blocking[callee] {
					blocking[fn] = true
					changed = true
				}
				return true
			})
		}
	}
	return blocking
}

// IsContextType reports whether t is context.Context.
func IsContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// FormatNode renders a small expression (e.g. a mutex receiver) for use
// in diagnostics and as a lock identity key.
func FormatNode(fset *token.FileSet, n ast.Node) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, n); err != nil {
		return "?"
	}
	return buf.String()
}
