// Package lint assembles the topklint analyzer suite — the static
// checks that enforce runtime invariants the paper's guarantees and the
// production roadmap rely on but the compiler cannot see. See DESIGN.md
// ("Static guarantees") for the invariant each analyzer encodes.
package lint

import (
	"repro/internal/lint/analysis"
	"repro/internal/lint/billedaccess"
	"repro/internal/lint/ctxfirst"
	"repro/internal/lint/detrand"
	"repro/internal/lint/hotpathalloc"
	"repro/internal/lint/lockdiscipline"
	"repro/internal/lint/nopanic"
	"repro/internal/lint/poolpair"
	"repro/internal/lint/registrycomplete"
	"repro/internal/lint/resetcomplete"
)

// All returns the complete analyzer suite in stable order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		nopanic.Analyzer,
		detrand.Analyzer,
		registrycomplete.Analyzer,
		ctxfirst.Analyzer,
		lockdiscipline.Analyzer,
		hotpathalloc.Analyzer,
		resetcomplete.Analyzer,
		poolpair.Analyzer,
		billedaccess.Analyzer,
	}
}
