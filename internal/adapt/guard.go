package adapt

import (
	"context"
	"fmt"
	"math"
	"sync"

	"repro/internal/access"
)

// orderSlack absorbs float formatting round-trips (websim serves scores
// through JSON): neighbors within this distance are considered ordered,
// and a random result within it of the sorted sighting is consistent.
const orderSlack = 1e-9

// GuardOption configures a Guard.
type GuardOption func(*Guard)

// WithClampRange makes out-of-[0,1] finite scores a soft violation: the
// guard counts and reports it but serves the clamped score instead of
// failing the access. NaN/Inf are always hard failures — no clamp makes
// the threshold math meaningful.
func WithClampRange() GuardOption {
	return func(g *Guard) { g.clampRange = true }
}

// WithFailFast poisons a predicate's sorted stream on its first violation:
// every subsequent sorted access fails immediately without consulting the
// backend. Default behaviour retries through — the access fails, nothing
// is billed, and the resilience breaker quarantines the capability only if
// the source keeps lying.
func WithFailFast() GuardOption {
	return func(g *Guard) { g.failFast = true }
}

// WithViolationCallback registers a hook fired once per detected violation
// (after guard state is updated, outside the guard's lock). The facade
// uses it to emit obs.ContractViolation events on the engine observer.
func WithViolationCallback(fn func(kind access.Kind, pred int, reason string)) GuardOption {
	return func(g *Guard) { g.onViolation = fn }
}

// guardStream is the per-predicate witness state: everything the source
// has claimed so far, indexed both by rank and by object, so each new
// claim can be checked against every earlier one in O(1).
type guardStream struct {
	rankScore []float64 // score served at each rank; NaN = not yet served
	rankObj   []int32   // object served at each rank; -1 = not yet served
	seenRank  []int32   // rank each object appeared at; -1 = not yet seen
	value     []float64 // score attributed to each object; NaN = unknown
	poisoned  bool      // fail-fast tripped: stream is quarantined
}

// Guard wraps an access.Backend and enforces the source contract on every
// response before it reaches the session: sorted streams must descend,
// scores must be finite and in [0,1], each object appears at most once per
// stream, and random accesses must agree with what the sorted stream
// already claimed about the same object (and vice versa). Violating
// responses are rejected with a *access.ContractViolationError — the
// session refuses to bill them, and under resilience the breaker
// machinery quarantines a persistently lying capability exactly like a
// failing one, degrading the answer honestly instead of silently
// corrupting the threshold math.
//
// The guard wraps any Backend: everything above the wrap point sees only
// vetted responses (the facade installs it as the engine's outermost
// backend, so every session — and the plan the optimizer prices — works
// from vetted scores). It is safe for concurrent use; the violation
// callback is always invoked outside the guard's lock per the lock
// discipline.
type Guard struct {
	inner access.Backend

	clampRange  bool
	failFast    bool
	onViolation func(kind access.Kind, pred int, reason string)

	mu         sync.Mutex
	streams    []guardStream // sized lazily per predicate
	violations map[string]int
}

var _ access.Backend = (*Guard)(nil)

// NewGuard wraps the backend with contract enforcement.
func NewGuard(inner access.Backend, opts ...GuardOption) *Guard {
	g := &Guard{
		inner:      inner,
		streams:    make([]guardStream, inner.M()),
		violations: make(map[string]int),
	}
	for _, o := range opts {
		o(g)
	}
	return g
}

// Backend returns the wrapped backend, so callers can unwrap the guard
// when probing for optional capabilities (e.g. distributed-membership
// fingerprints) the guard forwards no interface for.
func (g *Guard) Backend() access.Backend { return g.inner }

// N returns the object count.
func (g *Guard) N() int { return g.inner.N() }

// M returns the predicate count.
func (g *Guard) M() int { return g.inner.M() }

// Violations snapshots the per-reason violation counts (keys from
// obs.ViolationReasons).
func (g *Guard) Violations() map[string]int {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make(map[string]int, len(g.violations))
	for k, v := range g.violations {
		out[k] = v
	}
	return out
}

// stream returns pred's witness state, sizing it on first use. Caller
// holds g.mu.
func (g *Guard) stream(pred int) *guardStream {
	st := &g.streams[pred]
	if st.seenRank == nil {
		n := g.inner.N()
		st.rankScore = make([]float64, n)
		st.rankObj = make([]int32, n)
		st.seenRank = make([]int32, n)
		st.value = make([]float64, n)
		for i := 0; i < n; i++ {
			st.rankScore[i] = math.NaN()
			st.rankObj[i] = -1
			st.seenRank[i] = -1
			st.value[i] = math.NaN()
		}
	}
	return st
}

// reject records the violation and builds the error; the callback fires
// from the deferred hook the callers set up, outside g.mu.
func (g *Guard) reject(kind access.Kind, pred int, reason, detail string) error {
	g.violations[reason]++
	return &access.ContractViolationError{Kind: kind, Pred: pred, Reason: reason, Detail: detail}
}

// Sorted fetches the rank-th entry of pred's list and vets it: finite
// score in [0,1], object in universe, no object at two ranks, descending
// order against recorded neighbor ranks, and consistency with any random
// access that already revealed this object's score.
func (g *Guard) Sorted(ctx context.Context, pred, rank int) (int, float64, error) {
	g.mu.Lock()
	if g.streams[pred].poisoned {
		g.mu.Unlock()
		return 0, 0, &access.ContractViolationError{
			Kind: access.SortedAccess, Pred: pred,
			Reason: "unsorted", Detail: "stream quarantined after earlier violation (fail-fast)",
		}
	}
	g.mu.Unlock()

	obj, s, err := g.inner.Sorted(ctx, pred, rank)
	if err != nil {
		return 0, 0, err
	}

	g.mu.Lock()
	st := g.stream(pred)
	if g.clampRange && !math.IsNaN(s) && !math.IsInf(s, 0) && (s < 0 || s > 1) {
		g.violations["range"]++ // soft: counted, served clamped
		s = math.Min(1, math.Max(0, s))
	}
	verr := g.vetSorted(st, pred, rank, obj, s)
	if verr == nil {
		st.rankScore[rank] = s
		st.rankObj[rank] = int32(obj)
		st.seenRank[obj] = int32(rank)
		st.value[obj] = s
	} else if g.failFast {
		st.poisoned = true
	}
	g.mu.Unlock()

	if verr != nil {
		g.fire(access.SortedAccess, pred, verr)
		return 0, 0, verr
	}
	return obj, s, nil
}

// vetSorted checks one sorted response against the witness state. Caller
// holds g.mu and has already applied the WithClampRange soft clamp, so an
// out-of-range score reaching the range check here is always a hard
// violation.
func (g *Guard) vetSorted(st *guardStream, pred, rank, obj int, s float64) error {
	if math.IsNaN(s) || math.IsInf(s, 0) {
		return g.reject(access.SortedAccess, pred, "nan",
			fmt.Sprintf("rank %d returned non-finite score %v", rank, s))
	}
	if s < 0 || s > 1 {
		return g.reject(access.SortedAccess, pred, "range",
			fmt.Sprintf("rank %d returned score %g outside [0,1]", rank, s))
	}
	if obj < 0 || obj >= len(st.seenRank) {
		return g.reject(access.SortedAccess, pred, "range",
			fmt.Sprintf("rank %d returned object %d outside universe [0,%d)", rank, obj, len(st.seenRank)))
	}
	if prev := st.seenRank[obj]; prev >= 0 && int(prev) != rank {
		return g.reject(access.SortedAccess, pred, "dup",
			fmt.Sprintf("object %d served at rank %d after rank %d", obj, rank, prev))
	}
	if prevObj := st.rankObj[rank]; prevObj >= 0 {
		if int(prevObj) != obj || math.Abs(st.rankScore[rank]-s) > orderSlack {
			return g.reject(access.SortedAccess, pred, "inconsistent",
				fmt.Sprintf("rank %d replayed as (u%d,%g) after (u%d,%g)", rank, obj, s, prevObj, st.rankScore[rank]))
		}
	}
	if rank > 0 && !math.IsNaN(st.rankScore[rank-1]) && s > st.rankScore[rank-1]+orderSlack {
		return g.reject(access.SortedAccess, pred, "unsorted",
			fmt.Sprintf("rank %d score %g above rank %d score %g", rank, s, rank-1, st.rankScore[rank-1]))
	}
	if rank+1 < len(st.rankScore) && !math.IsNaN(st.rankScore[rank+1]) && s+orderSlack < st.rankScore[rank+1] {
		return g.reject(access.SortedAccess, pred, "unsorted",
			fmt.Sprintf("rank %d score %g below rank %d score %g", rank, s, rank+1, st.rankScore[rank+1]))
	}
	if !math.IsNaN(st.value[obj]) && math.Abs(st.value[obj]-s) > orderSlack {
		return g.reject(access.SortedAccess, pred, "inconsistent",
			fmt.Sprintf("object %d sorted score %g contradicts recorded %g", obj, s, st.value[obj]))
	}
	return nil
}

// Random fetches p_pred[obj] and vets it: finite, in [0,1] (clamped under
// WithClampRange), and consistent with the score any earlier sorted
// sighting or probe attributed to the same object.
func (g *Guard) Random(ctx context.Context, pred, obj int) (float64, error) {
	v, err := g.inner.Random(ctx, pred, obj)
	if err != nil {
		return 0, err
	}

	g.mu.Lock()
	st := g.stream(pred)
	if g.clampRange && !math.IsNaN(v) && !math.IsInf(v, 0) && (v < 0 || v > 1) {
		g.violations["range"]++ // soft: counted, served clamped
		v = math.Min(1, math.Max(0, v))
	}
	var verr error
	switch {
	case math.IsNaN(v) || math.IsInf(v, 0):
		verr = g.reject(access.RandomAccess, pred, "nan",
			fmt.Sprintf("probe of object %d returned non-finite score %v", obj, v))
	case obj < 0 || obj >= len(st.value):
		verr = g.reject(access.RandomAccess, pred, "range",
			fmt.Sprintf("probe target %d outside universe [0,%d)", obj, len(st.value)))
	case v < 0 || v > 1:
		verr = g.reject(access.RandomAccess, pred, "range",
			fmt.Sprintf("probe of object %d returned score %g outside [0,1]", obj, v))
	case !math.IsNaN(st.value[obj]) && math.Abs(st.value[obj]-v) > orderSlack:
		verr = g.reject(access.RandomAccess, pred, "inconsistent",
			fmt.Sprintf("probe of object %d returned %g but sorted stream claimed %g", obj, v, st.value[obj]))
	default:
		st.value[obj] = v
	}
	g.mu.Unlock()

	if verr != nil {
		g.fire(access.RandomAccess, pred, verr)
		return 0, verr
	}
	return v, nil
}

// fire invokes the violation callback (outside the lock).
func (g *Guard) fire(kind access.Kind, pred int, err error) {
	if g.onViolation == nil {
		return
	}
	if cve, ok := err.(*access.ContractViolationError); ok {
		g.onViolation(kind, pred, cve.Reason)
	}
}
