package adapt

import (
	"context"
	"errors"
	"math"
	"testing"

	"repro/internal/access"
	"repro/internal/data"
)

// lyingBackend wraps an honest dataset backend and rewrites selected
// responses, modelling a source that violates the access contract.
type lyingBackend struct {
	access.Backend
	sorted func(pred, rank int, obj int, s float64) (int, float64)
	random func(pred, obj int, v float64) float64
}

func (b *lyingBackend) Sorted(ctx context.Context, pred, rank int) (int, float64, error) {
	obj, s, err := b.Backend.Sorted(ctx, pred, rank)
	if err != nil || b.sorted == nil {
		return obj, s, err
	}
	obj, s = b.sorted(pred, rank, obj, s)
	return obj, s, nil
}

func (b *lyingBackend) Random(ctx context.Context, pred, obj int) (float64, error) {
	v, err := b.Backend.Random(ctx, pred, obj)
	if err != nil || b.random == nil {
		return v, err
	}
	return b.random(pred, obj, v), nil
}

func honest(t *testing.T) access.Backend {
	t.Helper()
	ds, err := data.Generate(data.Uniform, 32, 2, 7)
	if err != nil {
		t.Fatalf("Uniform: %v", err)
	}
	return access.DatasetBackend{DS: ds}
}

func wantViolation(t *testing.T, err error, reason string) *access.ContractViolationError {
	t.Helper()
	if err == nil {
		t.Fatalf("want %s violation, got nil error", reason)
	}
	if !errors.Is(err, access.ErrContractViolation) {
		t.Fatalf("error does not wrap ErrContractViolation: %v", err)
	}
	var cve *access.ContractViolationError
	if !errors.As(err, &cve) {
		t.Fatalf("error is not a ContractViolationError: %v", err)
	}
	if cve.Reason != reason {
		t.Fatalf("violation reason = %q, want %q (err: %v)", cve.Reason, reason, err)
	}
	return cve
}

func TestGuardPassesHonestSource(t *testing.T) {
	g := NewGuard(honest(t))
	ctx := context.Background()
	for rank := 0; rank < 32; rank++ {
		if _, _, err := g.Sorted(ctx, 0, rank); err != nil {
			t.Fatalf("honest sorted access rejected at rank %d: %v", rank, err)
		}
	}
	for obj := 0; obj < 32; obj++ {
		if _, err := g.Random(ctx, 1, obj); err != nil {
			t.Fatalf("honest random access rejected for object %d: %v", obj, err)
		}
	}
	// Cross-check: probing objects the sorted stream already revealed.
	for obj := 0; obj < 32; obj++ {
		if _, err := g.Random(ctx, 0, obj); err != nil {
			t.Fatalf("consistent probe rejected for object %d: %v", obj, err)
		}
	}
	if n := len(g.Violations()); n != 0 {
		t.Fatalf("honest source recorded %d violation kinds: %v", n, g.Violations())
	}
}

func TestGuardDetectsNaN(t *testing.T) {
	g := NewGuard(&lyingBackend{Backend: honest(t),
		sorted: func(pred, rank, obj int, s float64) (int, float64) {
			if rank == 3 {
				return obj, math.NaN()
			}
			return obj, s
		}})
	ctx := context.Background()
	for rank := 0; rank < 3; rank++ {
		if _, _, err := g.Sorted(ctx, 0, rank); err != nil {
			t.Fatalf("clean rank %d rejected: %v", rank, err)
		}
	}
	_, _, err := g.Sorted(ctx, 0, 3)
	wantViolation(t, err, "nan")
	if g.Violations()["nan"] != 1 {
		t.Fatalf("violations = %v, want nan:1", g.Violations())
	}
}

func TestGuardDetectsUnsorted(t *testing.T) {
	var prev float64
	g := NewGuard(&lyingBackend{Backend: honest(t),
		sorted: func(pred, rank, obj int, s float64) (int, float64) {
			if rank == 5 {
				return obj, prev + 0.001 // jumps above rank 4's score, within [0,1]
			}
			prev = s
			return obj, s
		}})
	ctx := context.Background()
	for rank := 0; rank < 5; rank++ {
		if _, _, err := g.Sorted(ctx, 0, rank); err != nil {
			t.Fatalf("clean rank %d rejected: %v", rank, err)
		}
	}
	_, _, err := g.Sorted(ctx, 0, 5)
	wantViolation(t, err, "unsorted")
}

func TestGuardDetectsDuplicate(t *testing.T) {
	var firstObj int
	g := NewGuard(&lyingBackend{Backend: honest(t),
		sorted: func(pred, rank, obj int, s float64) (int, float64) {
			if rank == 0 {
				firstObj = obj
			}
			if rank == 4 {
				return firstObj, s // replays rank 0's object deeper down
			}
			return obj, s
		}})
	ctx := context.Background()
	for rank := 0; rank < 4; rank++ {
		if _, _, err := g.Sorted(ctx, 0, rank); err != nil {
			t.Fatalf("clean rank %d rejected: %v", rank, err)
		}
	}
	_, _, err := g.Sorted(ctx, 0, 4)
	wantViolation(t, err, "dup")
}

func TestGuardDetectsInconsistentProbe(t *testing.T) {
	g := NewGuard(&lyingBackend{Backend: honest(t),
		random: func(pred, obj int, v float64) float64 {
			return v / 2 // contradicts the sorted sighting
		}})
	ctx := context.Background()
	obj, s, err := g.Sorted(ctx, 0, 0)
	if err != nil {
		t.Fatalf("sorted: %v", err)
	}
	if s == 0 {
		t.Skipf("top score is zero; halving cannot contradict")
	}
	_, err = g.Random(ctx, 0, obj)
	wantViolation(t, err, "inconsistent")
}

func TestGuardRangeViolationAndClamp(t *testing.T) {
	lie := func(pred, rank, obj int, s float64) (int, float64) { return obj, 1.5 }
	// Hard by default.
	g := NewGuard(&lyingBackend{Backend: honest(t), sorted: lie})
	_, _, err := g.Sorted(context.Background(), 0, 0)
	wantViolation(t, err, "range")

	// Soft under WithClampRange: served clamped, counted, stream stays up.
	g2 := NewGuard(&lyingBackend{Backend: honest(t), sorted: lie}, WithClampRange())
	_, s, err := g2.Sorted(context.Background(), 0, 0)
	if err != nil {
		t.Fatalf("clamped access failed: %v", err)
	}
	if s != 1 {
		t.Fatalf("clamped score = %g, want 1", s)
	}
	if g2.Violations()["range"] != 1 {
		t.Fatalf("soft violation not counted: %v", g2.Violations())
	}
}

func TestGuardFailFastPoisonsStream(t *testing.T) {
	calls := 0
	inner := &lyingBackend{Backend: honest(t),
		sorted: func(pred, rank, obj int, s float64) (int, float64) {
			calls++
			if rank == 2 {
				return obj, math.Inf(1)
			}
			return obj, s
		}}
	g := NewGuard(inner, WithFailFast())
	ctx := context.Background()
	g.Sorted(ctx, 0, 0)
	g.Sorted(ctx, 0, 1)
	if _, _, err := g.Sorted(ctx, 0, 2); err == nil {
		t.Fatalf("violation not detected")
	}
	before := calls
	if _, _, err := g.Sorted(ctx, 0, 2); err == nil {
		t.Fatalf("poisoned stream served an access")
	}
	if calls != before {
		t.Fatalf("poisoned stream still consulted the backend")
	}
	// Other predicates are unaffected.
	if _, _, err := g.Sorted(ctx, 1, 0); err != nil {
		t.Fatalf("unrelated stream poisoned: %v", err)
	}
}

func TestGuardCallbackOutsideLock(t *testing.T) {
	var g *Guard
	fired := 0
	g = NewGuard(&lyingBackend{Backend: honest(t),
		sorted: func(pred, rank, obj int, s float64) (int, float64) {
			return obj, math.NaN()
		}},
		WithViolationCallback(func(kind access.Kind, pred int, reason string) {
			fired++
			// Re-entering the guard deadlocks if the callback were invoked
			// under the lock.
			g.Violations()
			if kind != access.SortedAccess || reason != "nan" {
				t.Errorf("callback got (%v,%q)", kind, reason)
			}
		}))
	g.Sorted(context.Background(), 0, 0)
	if fired != 1 {
		t.Fatalf("callback fired %d times, want 1", fired)
	}
}

func TestGuardRejectsForeignObject(t *testing.T) {
	g := NewGuard(&lyingBackend{Backend: honest(t),
		sorted: func(pred, rank, obj int, s float64) (int, float64) {
			return 999, s // object outside the 32-object universe
		}})
	_, _, err := g.Sorted(context.Background(), 0, 0)
	wantViolation(t, err, "range")
}
