package adapt

import (
	"math"
	"testing"

	"repro/internal/access"
	"repro/internal/algo"
	"repro/internal/opt"
	"repro/internal/score"
	"repro/internal/state"
)

func newTable(t *testing.T, n, m int) *state.Table {
	t.Helper()
	tab, err := state.NewTable(n, m, score.Avg())
	if err != nil {
		t.Fatalf("NewTable: %v", err)
	}
	return tab
}

// feedSorted descends pred's stream through the monitor following the
// power law (1 - d/(n+1))^c, using distinct object ids.
func feedSorted(mo *Monitor, tab *state.Table, pred, from, to int, c float64) {
	n := tab.N()
	for d := from; d <= to; d++ {
		s := math.Pow(1-float64(d)/float64(n+1), c)
		obj := (d - 1) % n
		tab.ObserveSorted(pred, obj, s)
		mo.Observe(tab, algo.Choice{Kind: access.SortedAccess, Pred: pred}, obj, s)
	}
}

func TestObservePeriod(t *testing.T) {
	mo := NewMonitor(Config{Period: 10})
	tab := newTable(t, 100, 2)
	due := 0
	for d := 1; d <= 25; d++ {
		s := 1 - float64(d)/101
		tab.ObserveSorted(0, d-1, s)
		if mo.Observe(tab, algo.Choice{Kind: access.SortedAccess, Pred: 0}, d-1, s) {
			due++
		}
	}
	if due != 2 {
		t.Fatalf("25 accesses at period 10: got %d checkpoints due, want 2", due)
	}
}

func TestCheckpointUniformStreamNotDiverged(t *testing.T) {
	mo := NewMonitor(Config{})
	tab := newTable(t, 1000, 2)
	feedSorted(mo, tab, 0, 1, 64, 1)
	feedSorted(mo, tab, 1, 1, 64, 1)
	v := mo.Checkpoint(tab)
	if v.Diverged {
		t.Fatalf("uniform streams against uniform baseline diverged: score=%g", v.Score)
	}
	if v.Score > 0.1 {
		t.Fatalf("uniform streams should score near zero, got %g", v.Score)
	}
}

func TestCheckpointDriftedStreamDiverges(t *testing.T) {
	// StaleFactor 1.5: the exponent-4 drift scores log2(4) = 2 up to float
	// rounding, which sits exactly on the default 2.0 stale boundary.
	mo := NewMonitor(Config{StaleFactor: 1.5})
	tab := newTable(t, 1000, 2)
	// Predicate 0 collapses with exponent 4 (scores fall 4x faster in log
	// space than the uniform baseline predicts); predicate 1 is honest.
	feedSorted(mo, tab, 0, 1, 64, 4)
	feedSorted(mo, tab, 1, 1, 64, 1)
	v := mo.Checkpoint(tab)
	if !v.Diverged {
		t.Fatalf("exponent-4 stream against uniform baseline not diverged: score=%g", v.Score)
	}
	if v.Score < 1.5 {
		t.Fatalf("log2(4)=2 expected divergence near 2, got %g", v.Score)
	}
	if !v.Stale {
		t.Fatalf("score %g past threshold*staleFactor should flag stale", v.Score)
	}
}

func TestCheckpointShallowStreamTrusted(t *testing.T) {
	mo := NewMonitor(Config{MinDepth: 8})
	tab := newTable(t, 1000, 1)
	// Only 4 accesses: below MinDepth, slope evidence must not fire even
	// though the scores collapse hard.
	feedSorted(mo, tab, 0, 1, 4, 8)
	v := mo.Checkpoint(tab)
	// The frontier check still sees the collapsed ell, so only assert the
	// slope path via Observed: no slope should be reported.
	st := mo.Observed(tab)
	if st.Slopes[0] != 0 {
		t.Fatalf("depth 4 < MinDepth 8 should report no slope, got %g", st.Slopes[0])
	}
	_ = v
}

func TestProbeMeanDivergence(t *testing.T) {
	mo := NewMonitor(Config{})
	tab := newTable(t, 1000, 2)
	feedSorted(mo, tab, 0, 1, 16, 1)
	// Probe predicate 1 with a mean far below the uniform 0.5: scores ~0.1
	// imply exponent 1/0.1-1 = 9. 32 probes clears minProbes (24) — means
	// over fewer probes are too noisy to steer a re-plan.
	for u := 0; u < 32; u++ {
		tab.ObserveRandom(1, u, 0.1)
		mo.Observe(tab, algo.Choice{Kind: access.RandomAccess, Pred: 1}, u, 0.1)
	}
	v := mo.Checkpoint(tab)
	if !v.Diverged {
		t.Fatalf("probe mean 0.1 against uniform baseline not diverged: score=%g", v.Score)
	}
	st := mo.Observed(tab)
	if st.ProbeMeans[1] != opt.QuantizeMean(0.1) {
		t.Fatalf("observed probe mean = %g, want %g", st.ProbeMeans[1], opt.QuantizeMean(0.1))
	}
	if st.ProbeMeans[0] != 0 {
		t.Fatalf("unprobed predicate reported mean %g", st.ProbeMeans[0])
	}
}

func TestRebaseAbsorbsDrift(t *testing.T) {
	mo := NewMonitor(Config{})
	tab := newTable(t, 1000, 2)
	feedSorted(mo, tab, 0, 1, 64, 4)
	feedSorted(mo, tab, 1, 1, 64, 1)
	v1 := mo.Checkpoint(tab)
	if !v1.Diverged {
		t.Fatalf("setup: drift not detected (score=%g)", v1.Score)
	}
	mo.Rebase(mo.Observed(tab))
	// Continue the same power law deeper: against the rebased baseline the
	// stream is now on-model.
	feedSorted(mo, tab, 0, 65, 128, 4)
	feedSorted(mo, tab, 1, 65, 128, 1)
	v2 := mo.Checkpoint(tab)
	if v2.Diverged {
		t.Fatalf("after rebase the same power law should be on-model, score=%g", v2.Score)
	}
}

func TestAdapterReplansOnceForStableDrift(t *testing.T) {
	tab := newTable(t, 1000, 2)
	plans, applies := 0, 0
	ad := &Adapter{
		Mon:  NewMonitor(Config{Period: 16}),
		Base: opt.Config{},
		PlanFunc: func(cfg opt.Config) (opt.Plan, error) {
			plans++
			if cfg.Observed == nil {
				t.Fatalf("re-plan config missing observed stats")
			}
			return opt.Plan{H: []float64{0.5, 1}, Omega: []int{0, 1}}, nil
		},
		ApplyFunc: func(p opt.Plan) error { applies++; return nil },
	}
	// 256 accesses of a stable exponent-4 drift: many checkpoints, but the
	// quantized observations converge, so the adapter re-plans a bounded
	// number of times (key-equality skip), not once per checkpoint.
	n := tab.N()
	for d := 1; d <= 256; d++ {
		s := math.Pow(1-float64(d)/float64(n+1), 4)
		obj := d - 1
		tab.ObserveSorted(0, obj, s)
		ad.ObserveAccess(tab, algo.Choice{Kind: access.SortedAccess, Pred: 0}, obj, s)
	}
	if ad.Replans() == 0 {
		t.Fatalf("stable drift never triggered a re-plan")
	}
	if ad.Replans() > 4 {
		t.Fatalf("stable drift re-planned %d times; key-equality skip should bound it", ad.Replans())
	}
	if plans != applies || plans != ad.Replans() {
		t.Fatalf("plans=%d applies=%d replans=%d, want all equal", plans, applies, ad.Replans())
	}
}

func TestAdapterTelemetryOnly(t *testing.T) {
	tab := newTable(t, 1000, 1)
	ad := &Adapter{Mon: NewMonitor(Config{Period: 8})}
	n := tab.N()
	for d := 1; d <= 64; d++ {
		s := math.Pow(1-float64(d)/float64(n+1), 6)
		tab.ObserveSorted(0, d-1, s)
		ad.ObserveAccess(tab, algo.Choice{Kind: access.SortedAccess, Pred: 0}, d-1, s)
	}
	if ad.Replans() != 0 {
		t.Fatalf("nil PlanFunc must never re-plan, got %d", ad.Replans())
	}
	if ad.Mon.Checkpoints() == 0 {
		t.Fatalf("telemetry-only adapter should still checkpoint")
	}
}

func TestAdapterSurvivesPlanError(t *testing.T) {
	tab := newTable(t, 1000, 1)
	ad := &Adapter{
		Mon:       NewMonitor(Config{Period: 8}),
		PlanFunc:  func(opt.Config) (opt.Plan, error) { return opt.Plan{}, errPlan },
		ApplyFunc: func(opt.Plan) error { t.Fatalf("apply after plan error"); return nil },
	}
	n := tab.N()
	for d := 1; d <= 64; d++ {
		s := math.Pow(1-float64(d)/float64(n+1), 6)
		tab.ObserveSorted(0, d-1, s)
		ad.ObserveAccess(tab, algo.Choice{Kind: access.SortedAccess, Pred: 0}, d-1, s)
	}
	if ad.Replans() != 0 {
		t.Fatalf("failed plans must not count as re-plans")
	}
}

var errPlan = errTest("plan failed")

type errTest string

func (e errTest) Error() string { return string(e) }

func TestObservedGlobalDriftPrior(t *testing.T) {
	mo := NewMonitor(Config{})
	tab := newTable(t, 1000, 3)
	// Predicate 0 measured at exponent 4; predicates 1 and 2 untouched.
	feedSorted(mo, tab, 0, 1, 64, 4)
	st := mo.Observed(tab)
	if st.Slopes[0] == 0 {
		t.Fatalf("measured stream reported no slope")
	}
	if st.Slopes[1] == 0 || st.Slopes[2] == 0 {
		t.Fatalf("unmeasured streams should take the global-drift prior, got %v", st.Slopes)
	}
	if st.Slopes[1] != st.Slopes[0] {
		t.Fatalf("with one measured stream the prior is its exponent: %g vs %g", st.Slopes[1], st.Slopes[0])
	}
	// With nothing measured there is no prior to apply.
	mo2 := NewMonitor(Config{})
	tab2 := newTable(t, 1000, 3)
	st2 := mo2.Observed(tab2)
	for i, s := range st2.Slopes {
		if s != 0 {
			t.Fatalf("pred %d got a prior with zero evidence: %g", i, s)
		}
	}
}

func TestAdapterMaxReplansCap(t *testing.T) {
	tab := newTable(t, 1000, 2)
	plans := 0
	ad := &Adapter{
		Mon:        NewMonitor(Config{Period: 16}),
		MaxReplans: 1,
		PlanFunc: func(cfg opt.Config) (opt.Plan, error) {
			plans++
			// Return a fresh H each time so the key-equality skip never
			// masks the cap under test.
			return opt.Plan{H: []float64{1 / float64(plans+1), 1}, Omega: []int{0, 1}}, nil
		},
		ApplyFunc: func(opt.Plan) error { return nil },
	}
	n := tab.N()
	// Escalating drift: exponent grows with depth, so quantized observations
	// keep changing and every checkpoint would re-plan if uncapped.
	for d := 1; d <= 256; d++ {
		c := 2 + float64(d)/32
		s := math.Pow(1-float64(d)/float64(n+1), c)
		tab.ObserveSorted(0, d-1, s)
		ad.ObserveAccess(tab, algo.Choice{Kind: access.SortedAccess, Pred: 0}, d-1, s)
	}
	if ad.Replans() != 1 {
		t.Fatalf("MaxReplans=1 but %d re-plans applied", ad.Replans())
	}
}

func TestAdapterIncumbentMargin(t *testing.T) {
	// Candidate estimates barely below the incumbent's must be rejected;
	// estimates beating it by more than ReplanMargin must be applied.
	run := func(candEst access.Cost) int {
		tab := newTable(t, 1000, 2)
		ad := &Adapter{
			Mon:       NewMonitor(Config{Period: 16}),
			Incumbent: opt.Plan{H: []float64{0.5, 0.5}, Omega: []int{0, 1}},
			PlanFunc: func(cfg opt.Config) (opt.Plan, error) {
				return opt.Plan{H: []float64{0.1, 1}, Omega: []int{0, 1}}, nil
			},
			ApplyFunc: func(opt.Plan) error { return nil },
			EstimateFunc: func(cfg opt.Config, h []float64, omega []int) (access.Cost, error) {
				if h[0] == 0.5 {
					return 1000, nil // incumbent
				}
				return candEst, nil
			},
		}
		n := tab.N()
		for d := 1; d <= 64; d++ {
			s := math.Pow(1-float64(d)/float64(n+1), 6)
			tab.ObserveSorted(0, d-1, s)
			ad.ObserveAccess(tab, algo.Choice{Kind: access.SortedAccess, Pred: 0}, d-1, s)
		}
		return ad.Replans()
	}
	if got := run(900); got != 0 {
		t.Fatalf("10%% modelled win must not clear the %g margin, got %d re-plans", ReplanMargin, got)
	}
	if got := run(200); got == 0 {
		t.Fatalf("5x modelled win must clear the margin")
	}
}

func TestAdapterSunkCostCredit(t *testing.T) {
	// With a Scenario wired, the incumbent is credited with the work already
	// done: a candidate that would clear the margin on from-scratch
	// estimates no longer does once the incumbent's spend is subtracted.
	scn := access.Scenario{Preds: []access.PredCost{
		{SortedOK: true, Sorted: access.CostOf(10), RandomOK: true, Random: access.CostOf(1)},
		{SortedOK: true, Sorted: access.CostOf(10), RandomOK: true, Random: access.CostOf(1)},
	}}
	tab := newTable(t, 1000, 2)
	ad := &Adapter{
		Mon:       NewMonitor(Config{Period: 64}),
		Incumbent: opt.Plan{H: []float64{0.5, 0.5}, Omega: []int{0, 1}},
		PlanFunc: func(cfg opt.Config) (opt.Plan, error) {
			// The candidate abandons predicate 0 entirely: none of the paid
			// descent counts toward it.
			return opt.Plan{H: []float64{1, 0.1}, Omega: []int{0, 1}}, nil
		},
		ApplyFunc: func(opt.Plan) error { return nil },
		EstimateFunc: func(cfg opt.Config, h []float64, omega []int) (access.Cost, error) {
			if h[0] == 0.5 {
				return access.CostOf(1000), nil // incumbent, from scratch
			}
			return access.CostOf(700), nil // candidate: clears 25% alone...
		},
		Scenario: func() access.Scenario { return scn },
	}
	// ...but 64 sorted accesses at cost 10 are already sunk on the
	// incumbent's path: remaining 1000-640=360 < 700, so no switch.
	n := tab.N()
	for d := 1; d <= 64; d++ {
		s := math.Pow(1-float64(d)/float64(n+1), 6)
		tab.ObserveSorted(0, d-1, s)
		ad.ObserveAccess(tab, algo.Choice{Kind: access.SortedAccess, Pred: 0}, d-1, s)
	}
	if ad.Replans() != 0 {
		t.Fatalf("sunk-cost credit should block the switch, got %d re-plans", ad.Replans())
	}
}

func TestTargetDepth(t *testing.T) {
	if d := targetDepth(1, 2, 100); d != 0 {
		t.Fatalf("H=1 drains nothing, got %g", d)
	}
	if d := targetDepth(0, 2, 100); d != 100 {
		t.Fatalf("H=0 drains everything, got %g", d)
	}
	// Uniform (c=1): threshold 0.25 sits three quarters down the stream.
	if d := targetDepth(0.25, 1, 100); math.Abs(d-75) > 1e-9 {
		t.Fatalf("uniform targetDepth(0.25) = %g, want 75", d)
	}
	// Steeper descent reaches the same threshold shallower... in score
	// space scores collapse, so the threshold is crossed *earlier*.
	if steep, flat := targetDepth(0.25, 4, 100), targetDepth(0.25, 1, 100); steep >= flat {
		t.Fatalf("exponent 4 should cross 0.25 shallower than exponent 1: %g vs %g", steep, flat)
	}
}
