package adapt

import (
	"math"

	"repro/internal/access"
	"repro/internal/algo"
	"repro/internal/obs"
	"repro/internal/opt"
	"repro/internal/state"
)

// Adapter drives mid-query re-planning: it is the algo.AccessObserver an
// execution's Monitor hook points at. Every access feeds the divergence
// monitor; when a checkpoint comes due and reports divergence, the adapter
// re-enters the optimizer — through the caller-supplied PlanFunc, which is
// expected to route through the plan cache — with the quantized observed
// statistics folded into the configuration, then installs the new plan via
// ApplyFunc (typically Cursor.SetSelector, the same swap the breaker
// scenario-change path uses).
//
// Re-plans are best-effort: a failing PlanFunc or ApplyFunc leaves the
// current plan in force (the execution is still correct under any plan —
// the SR/G fallback rule guarantees termination), and the error is
// swallowed so a flaky optimizer can never kill a running query.
//
// An Adapter with a nil PlanFunc or ApplyFunc is telemetry-only: it
// monitors and checkpoints but never re-plans — the mode TA executions
// use, since TA has no plan degrees of freedom to change.
type Adapter struct {
	// Mon scores divergence. Required.
	Mon *Monitor
	// Base is the optimizer configuration re-plans start from; the adapter
	// copies it and sets Observed (and, for stale verdicts, Scheme).
	Base opt.Config
	// PlanFunc produces a plan for the amended configuration. It should go
	// through the engine's plan cache so repeated identical observations
	// (this query or any other) hit the cache. Nil disables re-planning.
	PlanFunc func(cfg opt.Config) (opt.Plan, error)
	// ApplyFunc installs a freshly produced plan on the live execution.
	// Nil disables re-planning.
	ApplyFunc func(p opt.Plan) error
	// Obs receives AdaptiveReplan events (may be nil).
	Obs obs.Observer
	// ScenarioChanged, when non-nil, reports whether the access scenario
	// changed since it last reported true (cost shifts, breaker flips). A
	// checkpoint then re-plans even without statistical divergence — the
	// costs the plan was priced against are gone, exactly the case the
	// page-boundary scenario-change re-plan handles, applied mid-page.
	ScenarioChanged func() bool
	// MaxReplans caps drift-triggered re-plans per execution (zero takes
	// DefaultMaxReplans). Every plan switch strands some of the work done
	// under the old plan, so past a few swaps the adapter stops chasing
	// statistics and lets the current plan run out. Scenario-change
	// re-plans are exempt: stale costs are wrong no matter how often.
	MaxReplans int
	// Incumbent is the plan currently driving the execution; the adapter
	// updates it after each applied re-plan. When EstimateFunc is also
	// set, a candidate plan must beat the incumbent — both priced under
	// the same observation-warped model — by ReplanMargin before it is
	// applied: switching strands work already done under the incumbent,
	// so a statistically noisy "slightly better" candidate is a net loss.
	Incumbent opt.Plan
	// EstimateFunc prices a fixed (H, Omega) configuration under the
	// amended configuration (opt.EstimateConfiguration through the
	// engine). Nil skips the incumbent comparison.
	EstimateFunc func(cfg opt.Config, h []float64, omega []int) (access.Cost, error)
	// Scenario, when non-nil, returns the live access scenario; the
	// incumbent comparison uses its unit costs to reason about sunk work
	// (see betterThanIncumbent). Nil falls back to the from-scratch
	// comparison.
	Scenario func() access.Scenario

	lastKey string
	replans int
}

// DefaultMaxReplans bounds drift-triggered re-plans per execution.
const DefaultMaxReplans = 1

// ReplanMargin is the estimated-cost improvement a candidate plan must
// show over the incumbent (under the same model) before a mid-query swap:
// candidate < (1 - ReplanMargin) * incumbent.
const ReplanMargin = 0.25

var _ algo.AccessObserver = (*Adapter)(nil)

// Replans reports how many re-plans were actually applied.
func (a *Adapter) Replans() int { return a.replans }

// ObserveAccess is the checkpoint hook (see algo.AccessObserver). The
// per-access path is the monitor's counters only; the divergence math runs
// every Period accesses, and the optimizer only when it reports drift.
func (a *Adapter) ObserveAccess(t *state.Table, ch algo.Choice, obj int, score float64) {
	if !a.Mon.Observe(t, ch, obj, score) {
		return
	}
	v := a.Mon.Checkpoint(t)
	scnChanged := a.ScenarioChanged != nil && a.ScenarioChanged()
	if !v.Diverged && !scnChanged {
		return
	}
	if a.PlanFunc == nil || a.ApplyFunc == nil {
		return // telemetry-only
	}
	max := a.MaxReplans
	if max <= 0 {
		max = DefaultMaxReplans
	}
	if a.replans >= max && !scnChanged {
		return
	}
	stats := a.Mon.Observed(t)
	key := stats.Key()
	if key == a.lastKey && !scnChanged {
		// Identical quantized observations produce the identical cache key,
		// hence provably the identical plan: skip the round trip. This is
		// also the thrash guard — a source divergent in a way no plan can
		// absorb re-plans once, not every checkpoint. A scenario change
		// bypasses the skip: the scenario re-keys the cache on its own.
		return
	}
	cfg := a.Base
	cfg.Observed = stats
	trigger := "divergence"
	switch {
	case v.Stale:
		// The sample is not just drifted but wrong: bypass the estimator
		// and its sample entirely, plan from capabilities and observations.
		cfg.Scheme = opt.SchemeGreedy
		trigger = "stale_sample"
	case !v.Diverged:
		trigger = "scenario_change"
	}
	p, err := a.PlanFunc(cfg)
	if err != nil {
		return
	}
	if !scnChanged && !a.betterThanIncumbent(t, stats, cfg, p) {
		// The candidate's modelled advantage doesn't clear the switching
		// cost. Remember the key: the same observations need not be priced
		// again next checkpoint.
		a.lastKey = key
		return
	}
	if err := a.ApplyFunc(p); err != nil {
		return
	}
	a.lastKey = key
	a.replans++
	a.Incumbent = p
	a.Mon.Rebase(stats)
	if a.Obs != nil {
		a.Obs.AdaptiveReplan(trigger, v.Score)
	}
}

// betterThanIncumbent decides whether a candidate plan is worth a
// mid-query switch. Both plans are priced from scratch by the estimator
// under the same amended (observation-warped) configuration — the
// candidate's own EstimatedCost may come from a different model (greedy's
// closed form) and is not comparable. The from-scratch estimates are then
// converted to *remaining* costs, because a switch competes against
// finishing the incumbent, not starting it:
//
//   - the incumbent is credited with everything spent so far — the
//     execution followed it, so all sunk work lies on its path;
//   - the candidate is credited only with the drained prefixes it would
//     itself descend (min of current and target depth per stream) —
//     progress on streams it abandons is stranded.
//
// The candidate must then still win by ReplanMargin: estimates are noisy,
// and a modelled near-tie realizes as a loss once switching strands work.
func (a *Adapter) betterThanIncumbent(t *state.Table, stats *opt.ObservedStats, cfg opt.Config, candidate opt.Plan) bool {
	if a.EstimateFunc == nil || len(a.Incumbent.H) == 0 {
		return true
	}
	cur, err := a.EstimateFunc(cfg, a.Incumbent.H, a.Incumbent.Omega)
	if err != nil {
		return true
	}
	cand, err := a.EstimateFunc(cfg, candidate.H, candidate.Omega)
	if err != nil {
		return false
	}
	curRem, candRem := float64(cur), float64(cand)
	if a.Scenario != nil {
		scn := a.Scenario()
		n := t.N()
		for i := 0; i < len(scn.Preds) && i < a.Mon.m && i < len(candidate.H); i++ {
			cs := float64(scn.Preds[i].Sorted)
			d := float64(t.Depth(i))
			curRem -= d*cs + float64(a.Mon.probeCount[i])*float64(scn.Preds[i].Random)
			candRem -= math.Min(d, targetDepth(candidate.H[i], stats.Exponent(i), n)) * cs
		}
		if curRem < 0 {
			curRem = 0
		}
		if candRem < 0 {
			candRem = 0
		}
	}
	return candRem < (1-ReplanMargin)*curRem
}

// targetDepth is the sorted depth at which a stream with power-law
// exponent c is expected to fall below the score threshold h.
func targetDepth(h, c float64, n int) float64 {
	if h >= 1 {
		return 0
	}
	if h <= 0 || c <= 0 {
		return float64(n)
	}
	return (1 - math.Pow(h, 1/c)) * float64(n)
}
