// Package adapt is the mid-query adaptive layer: it watches a running
// execution's accesses, scores how far the sources have diverged from the
// plan's statistical assumptions, and — past a threshold — re-enters the
// optimizer with the observed statistics folded in, so NC/TA/MPro continue
// from suspended state under a plan that matches reality. It also provides
// the source contract guard (guard.go), which quarantines sources whose
// responses violate the sorted-access contract outright.
//
// The layer deliberately reuses existing machinery end to end: checkpoints
// ride the algo.AccessObserver hook, re-plans go through the plan cache
// with the observations fingerprinted into the key (the Config.SortedDiscount
// trick), plan swaps use Cursor.SetSelector (the breaker scenario-change
// path), and guard quarantine flows through the resilience breakers.
package adapt

import (
	"math"

	"repro/internal/access"
	"repro/internal/algo"
	"repro/internal/opt"
	"repro/internal/state"
)

// Defaults for a zero Config.
const (
	// DefaultPeriod is the checkpoint cadence J: divergence is evaluated
	// every J performed accesses. Checkpoints cost a handful of float ops
	// per predicate, so J trades detection latency against (tiny) overhead.
	DefaultPeriod = 64
	// DefaultThreshold is the divergence score past which a re-plan fires.
	// Scores are absolute log2 distances between implied power-law
	// exponents, so 1.0 means "a source is descending at least 2x faster
	// or slower than planned" — comfortably past quantization noise
	// (QuantizeSlope's half-steps put honest sources below 0.25).
	DefaultThreshold = 1.0
	// DefaultStaleFactor scales Threshold to the stale-sample tripwire: at
	// Threshold*StaleFactor the estimator's sample is considered not just
	// drifted but wrong, and the re-plan routes to the statistics-free
	// greedy planner instead of re-simulating on a warped sample. The
	// factor is deliberately high (8x exponent distance): ordinary drift —
	// even several-fold — is handled better by warping the sample, and the
	// greedy fallback is reserved for streams the power-law model cannot
	// describe at all.
	DefaultStaleFactor = 3.0
	// DefaultMinDepth is the minimum sorted depth before a stream's slope
	// is trusted: ln(1 - d/(n+1)) is numerically tiny for the first few
	// accesses and a single outlier score would swing the implied exponent
	// wildly.
	DefaultMinDepth = 8
	// minProbes is the minimum random-access count before a predicate's
	// probe mean participates in divergence. The mean-to-exponent map
	// c = 1/mu - 1 is steep near small means, so a handful of unlucky
	// probes would otherwise imply a wildly wrong exponent and drive a
	// mid-query re-plan onto statistics that are pure noise.
	minProbes = 24
)

// Exponent clamp for raw (unquantized) observations; wider than the
// optimizer's [1/8, 8] planning clamp so divergence saturates rather than
// blowing up on degenerate streams.
const (
	minRawExp = 1.0 / 64
	maxRawExp = 64
)

// Config tunes a Monitor. Zero values take the defaults above.
type Config struct {
	Period      int     // checkpoint every Period accesses (J)
	Threshold   float64 // divergence score that triggers a re-plan
	StaleFactor float64 // Threshold multiplier for the stale-sample verdict
	MinDepth    int     // sorted depth below which slopes are not trusted
}

func (c Config) withDefaults() Config {
	if c.Period <= 0 {
		c.Period = DefaultPeriod
	}
	if c.Threshold <= 0 {
		c.Threshold = DefaultThreshold
	}
	if c.StaleFactor <= 1 {
		c.StaleFactor = DefaultStaleFactor
	}
	if c.MinDepth <= 0 {
		c.MinDepth = DefaultMinDepth
	}
	return c
}

// Verdict is a checkpoint's outcome.
type Verdict struct {
	// Score is the divergence score: the largest absolute log2 distance
	// between any observed statistic and the plan's baseline assumption.
	Score float64
	// Diverged reports Score >= Threshold: the plan's assumptions are off
	// enough that re-planning is expected to pay for itself.
	Diverged bool
	// Stale reports Score >= Threshold*StaleFactor: the sample itself is
	// wrong, so the re-plan should not trust it even warped — route to the
	// statistics-free greedy planner.
	Stale bool
}

// Monitor accumulates per-source observations and scores divergence
// against the plan's baseline. It is wired into executions as (part of) an
// algo.AccessObserver; Observe sits on the access hot path and is
// allocation-free after the first access sizes the per-predicate state.
//
// Divergence is measured in log2-exponent space. Each sorted stream's
// last-seen score ell at depth d implies a power-law exponent
// c = ln(ell)/ln(1 - d/(n+1)) (the dummy sample's uniform model has c=1);
// each probed predicate's mean score mu implies c = 1/mu - 1 (mean of U^c
// is 1/(1+c)). The monitor compares those implied exponents — and the
// frontier F(ell_1..ell_m) they induce — against baseline exponents, which
// start at the sample's (1 everywhere for the dummy sample) and are
// re-based onto the absorbed observations after each re-plan, so a source
// that diverged once does not trip the monitor forever.
//
// A Monitor is owned by one execution at a time (cursors are already
// single-owner); it is not safe for concurrent use.
type Monitor struct {
	cfg Config

	m           int       // predicate count; 0 until the first access
	baseExp     []float64 // baseline exponent per predicate
	probeCount  []int
	probeSum    []float64
	evalBuf     []float64 // scratch for frontier Eval
	sinceCheck  int
	checkpoints int
}

// NewMonitor builds a monitor with the given tuning (zero fields take
// defaults). Per-predicate state is sized lazily on first observation.
func NewMonitor(cfg Config) *Monitor {
	return &Monitor{cfg: cfg.withDefaults()}
}

// Checkpoints reports how many checkpoints have been evaluated.
func (mo *Monitor) Checkpoints() int { return mo.checkpoints }

// Observe tallies one performed access and reports whether a checkpoint is
// due (every cfg.Period accesses). It does not evaluate divergence itself —
// the caller runs Checkpoint when told to — so the per-access cost is a
// few integer ops.
//
//topklint:hotpath
func (mo *Monitor) Observe(t *state.Table, ch algo.Choice, obj int, score float64) bool {
	if mo.m == 0 {
		//topklint:allow hotpathalloc lazy first-use sizing: grow runs once per execution, every later access is counter updates only
		mo.grow(t.M())
	}
	if ch.Kind == access.RandomAccess && ch.Pred < mo.m {
		mo.probeCount[ch.Pred]++
		mo.probeSum[ch.Pred] += score
	}
	mo.sinceCheck++
	if mo.sinceCheck < mo.cfg.Period {
		return false
	}
	mo.sinceCheck = 0
	return true
}

// grow sizes the per-predicate state (cold path: once per execution).
func (mo *Monitor) grow(m int) {
	mo.m = m
	mo.baseExp = make([]float64, m)
	for i := range mo.baseExp {
		mo.baseExp[i] = 1
	}
	mo.probeCount = make([]int, m)
	mo.probeSum = make([]float64, m)
	mo.evalBuf = make([]float64, m)
}

// impliedSlope returns the power-law exponent implied by the stream's
// last-seen score at its current depth, or 0 when the stream is too
// shallow to trust.
func (mo *Monitor) impliedSlope(t *state.Table, i int) float64 {
	d := t.Depth(i)
	if d < mo.cfg.MinDepth {
		return 0
	}
	n := t.N()
	fr := 1 - float64(d)/float64(n+1)
	if fr <= 0 || fr >= 1 {
		return 0
	}
	ell := t.LastSeen(i)
	if ell <= 0 {
		return maxRawExp // scores collapsed to zero: maximal descent
	}
	if ell >= 1 {
		return minRawExp // flat head pinned at 1: minimal descent
	}
	return clampExp(math.Log(ell) / math.Log(fr))
}

// impliedProbe returns the exponent implied by the predicate's observed
// random-access mean, or 0 with fewer than minProbes observations.
func (mo *Monitor) impliedProbe(i int) float64 {
	if mo.probeCount[i] < minProbes {
		return 0
	}
	mu := mo.probeSum[i] / float64(mo.probeCount[i])
	if mu <= 0 {
		return maxRawExp
	}
	if mu >= 1 {
		return minRawExp
	}
	return clampExp(1/mu - 1)
}

func clampExp(c float64) float64 {
	if math.IsNaN(c) || c < minRawExp {
		return minRawExp
	}
	if c > maxRawExp {
		return maxRawExp
	}
	return c
}

// logDist is the divergence metric: absolute distance in log2 space.
func logDist(obs, base float64) float64 {
	return math.Abs(math.Log2(obs) - math.Log2(base))
}

// Checkpoint scores the current divergence between observed source
// behaviour and the baseline. Three families of evidence contribute, and
// the score is their maximum:
//
//   - slope: per sorted stream, |log2(c_obs) - log2(c_base)| for the
//     exponent implied by the last-seen score at the current depth;
//   - probes: per predicate with enough random accesses, the same distance
//     for the exponent implied by the observed probe mean;
//   - frontier: |log2(F_obs/F_exp)| comparing the actual unseen-object
//     ceiling F(ell_1..ell_m) against the ceiling the baseline exponents
//     predict at the same depths — the aggregate check that catches
//     correlated drift the per-source checks each deem mild.
func (mo *Monitor) Checkpoint(t *state.Table) Verdict {
	if mo.m == 0 {
		mo.grow(t.M())
	}
	mo.checkpoints++
	score := 0.0
	n := t.N()
	for i := 0; i < mo.m; i++ {
		if c := mo.impliedSlope(t, i); c > 0 {
			if d := logDist(c, mo.baseExp[i]); d > score {
				score = d
			}
		}
		if c := mo.impliedProbe(i); c > 0 {
			if d := logDist(c, mo.baseExp[i]); d > score {
				score = d
			}
		}
		// Expected frontier component: the last-seen score the baseline
		// exponent predicts at this stream's actual depth.
		fr := 1 - float64(t.Depth(i))/float64(n+1)
		if fr < 0 {
			fr = 0
		}
		mo.evalBuf[i] = math.Pow(fr, mo.baseExp[i])
	}
	const eps = 1e-9
	fExp := t.Func().Eval(mo.evalBuf)
	fObs := t.UnseenUpper()
	if d := math.Abs(math.Log2((fObs + eps) / (fExp + eps))); d > score {
		score = d
	}
	return Verdict{
		Score:    score,
		Diverged: score >= mo.cfg.Threshold,
		Stale:    score >= mo.cfg.Threshold*mo.cfg.StaleFactor,
	}
}

// Observed renders the monitor's current evidence as quantized optimizer
// statistics — the form that extends the plan-cache fingerprint, so equal
// observations across checkpoints (and across queries) share one plan.
//
// Streams too shallow to measure take the global-drift prior: the
// geometric mean of the measured exponents. Drift is usually source-wide
// (a ranking model changed, a score scale moved), and without the prior a
// re-plan would model every untouched stream as uniform — strictly more
// attractive than the drifted ones — and re-allocate the drain work onto
// exactly the streams nothing is known about, stranding the progress the
// query already paid for.
func (mo *Monitor) Observed(t *state.Table) *opt.ObservedStats {
	if mo.m == 0 {
		mo.grow(t.M())
	}
	st := &opt.ObservedStats{
		Slopes:     make([]float64, mo.m),
		ProbeMeans: make([]float64, mo.m),
	}
	observed := 0
	logSum := 0.0
	for i := 0; i < mo.m; i++ {
		st.Slopes[i] = opt.QuantizeSlope(mo.impliedSlope(t, i))
		if mo.probeCount[i] >= minProbes {
			st.ProbeMeans[i] = opt.QuantizeMean(mo.probeSum[i] / float64(mo.probeCount[i]))
		}
		if st.Slopes[i] > 0 || st.ProbeMeans[i] > 0 {
			observed++
			logSum += math.Log(st.Exponent(i))
		}
	}
	if observed > 0 && observed < mo.m {
		prior := opt.QuantizeSlope(math.Exp(logSum / float64(observed)))
		for i := 0; i < mo.m; i++ {
			if st.Slopes[i] == 0 && st.ProbeMeans[i] == 0 {
				st.Slopes[i] = prior
			}
		}
	}
	return st
}

// Rebase re-anchors the baseline onto statistics a re-plan just absorbed:
// future divergence is measured against the new plan's assumptions, so one
// drift event does not trip checkpoints forever.
func (mo *Monitor) Rebase(st *opt.ObservedStats) {
	for i := range mo.baseExp {
		mo.baseExp[i] = st.Exponent(i)
	}
}
