package topk

// The disk-store oracle: moving the data from memory to disk must be
// invisible to the query layer. A store directory built by the streaming
// generator, opened as the engine's backend, must produce byte-identical
// answers AND a byte-identical access ledger to the in-memory dataset
// generated with the same parameters — across the Figure-2 capability
// matrix, for every algorithm family (fixed-plan NC, TA, MPro), with the
// sharing layer off and on. The ledger equality is the strong half: the
// store may amortize block reads internally, but what it surfaces to the
// session — and therefore what the client is billed — must match the
// in-memory source access for access.

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// newTestStore builds a store for (dist, n, m, seed) in a temp dir and
// opens it. Small blocks force multi-block segments.
func newTestStore(t *testing.T, dist string, n, m int, seed int64) *Store {
	t.Helper()
	dir := t.TempDir()
	if err := BuildStore(dir, dist, n, m, seed, StoreWriterOptions{BlockEntries: 16}); err != nil {
		t.Fatal(err)
	}
	st, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

func TestStoreOracle(t *testing.T) {
	const (
		n = 120
		m = 2
		k = 6
	)
	ds := mustGenerateDataset(t, "uniform", n, m, 31)
	q := Query{F: Min(), K: k}

	completed := 0
	for _, cell := range figure2Cells(m, 10) {
		for _, alg := range cursorOracleAlgos() {
			for _, sharing := range []bool{false, true} {
				name := fmt.Sprintf("%s/%s", cell.name, alg.name)
				if sharing {
					name += "/shared"
				}
				t.Run(name, func(t *testing.T) {
					opts := alg.opts(m)

					// In-memory oracle.
					memEng, err := NewEngine(matrixBackend(ds, sharing, nil), cell.scn)
					if err != nil {
						t.Skip("cell has no legal access")
					}
					mem, err := memEng.Run(q, opts...)
					if err != nil {
						t.Skipf("cell denies an access %s requires: %v", alg.name, err)
					}

					// The same query against the disk store. When sharing is
					// on the layer sits above the store, exactly as the
					// service composes it.
					var backend Backend = newTestStore(t, "uniform", n, m, 31)
					if sharing {
						backend = NewSharedAccess(backend, SharingOptions{})
					}
					diskEng, err := NewEngine(backend, cell.scn)
					if err != nil {
						t.Fatal(err)
					}
					got, err := diskEng.Run(q, opts...)
					if err != nil {
						t.Fatalf("in-memory run succeeded, disk failed: %v", err)
					}

					if !reflect.DeepEqual(got.Items, mem.Items) {
						t.Errorf("disk answers diverge from memory:\n disk   %v\n memory %v", got.Items, mem.Items)
					}
					if !reflect.DeepEqual(got.Ledger, mem.Ledger) {
						t.Errorf("disk ledger diverges from memory:\n disk   %+v\n memory %+v", got.Ledger, mem.Ledger)
					}
					if got.Truncated != mem.Truncated || !reflect.DeepEqual(got.Degraded, mem.Degraded) {
						t.Errorf("disk flags (trunc=%v degr=%v) diverge from memory (trunc=%v degr=%v)",
							got.Truncated, got.Degraded, mem.Truncated, mem.Degraded)
					}
					assertExactTopK(t, ds, q.F, k, got)
					completed++
				})
			}
		}
	}
	// The sweep must exercise the property across the matrix, not skip
	// its way to vacuous success.
	if completed < 15 {
		t.Fatalf("only %d cell/algorithm combinations completed", completed)
	}
}

// TestStoreOracleDistributions widens the oracle across score shapes at
// one representative cell: the tie-break-heavy Zipf family (most scores
// collide at the bottom ranks, so any tie-break divergence between the
// disk segments and the in-memory sorted views would surface here) plus
// the correlated/anti-correlated extremes.
func TestStoreOracleDistributions(t *testing.T) {
	const (
		n = 100
		m = 3
		k = 5
	)
	scn := UniformScenario(m, 1, 8)
	for _, dist := range []string{"zipf", "correlated", "anticorrelated"} {
		t.Run(dist, func(t *testing.T) {
			ds := mustGenerateDataset(t, dist, n, m, 7)
			st := newTestStore(t, dist, n, m, 7)
			q := Query{F: Avg(), K: k}
			memEng, err := NewEngine(DataBackend(ds), scn)
			if err != nil {
				t.Fatal(err)
			}
			diskEng, err := NewEngine(st, scn)
			if err != nil {
				t.Fatal(err)
			}
			for _, opt := range []RunOption{WithOptimizer(OptimizerConfig{}), WithAlgorithm("TA")} {
				mem, err := memEng.Run(q, opt)
				if err != nil {
					t.Fatal(err)
				}
				got, err := diskEng.Run(q, opt)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got.Items, mem.Items) {
					t.Errorf("%s: disk answers diverge: %v vs %v", dist, got.Items, mem.Items)
				}
				if !reflect.DeepEqual(got.Ledger, mem.Ledger) {
					t.Errorf("%s: disk ledger diverges: %+v vs %+v", dist, got.Ledger, mem.Ledger)
				}
			}
		})
	}
}

// TestStoreCrashRefusal is the facade half of the crash-consistency
// contract: a store directory truncated mid-write (the torn tail of the
// last segment) must refuse to open with ErrStoreCorrupt — never open
// quietly and serve a wrong answer — and rebuilding over the damage must
// recover fully.
func TestStoreCrashRefusal(t *testing.T) {
	dir := t.TempDir()
	if err := BuildStore(dir, "uniform", 80, 2, 3, StoreWriterOptions{BlockEntries: 16}); err != nil {
		t.Fatal(err)
	}
	// Tear the last segment's tail: the fence section goes first, exactly
	// what an interrupted write leaves behind.
	seg := filepath.Join(dir, "pred_001.seg")
	st, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(seg, st.Size()-4); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenStore(dir, StoreOptions{}); !errors.Is(err, ErrStoreCorrupt) {
		t.Fatalf("torn store must refuse with ErrStoreCorrupt, got %v", err)
	}
	// Recovery path: rebuild in place, reopen, answer correctly.
	if err := BuildStore(dir, "uniform", 80, 2, 3, StoreWriterOptions{BlockEntries: 16}); err != nil {
		t.Fatalf("rebuild over damage: %v", err)
	}
	s, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatalf("reopen after rebuild: %v", err)
	}
	defer s.Close()
	eng, err := NewEngine(s, UniformScenario(2, 1, 4))
	if err != nil {
		t.Fatal(err)
	}
	ans, err := eng.Run(Query{F: Min(), K: 4})
	if err != nil {
		t.Fatal(err)
	}
	ds := mustGenerateDataset(t, "uniform", 80, 2, 3)
	assertExactTopK(t, ds, Min(), 4, ans)
}

// TestStorePlanCacheKeying pins the fingerprint interaction: two engines
// over the same store sharing one plan cache must share plans when their
// calibrations match and must NOT when the measured physics differs —
// the calibration key re-keys the entry.
func TestStorePlanCacheKeying(t *testing.T) {
	st := newTestStore(t, "uniform", 100, 2, 5)
	cache := NewPlanCache(0)
	q := Query{F: Avg(), K: 5}
	scn := UniformScenario(2, 1, 8)

	calA := StoreCalibration{SortedMS: 0.001, RandomMS: 0.02, Mode: "warm", Probes: 512}
	calB := StoreCalibration{SortedMS: 0.001, RandomMS: 0.08, Mode: "cold", Probes: 512}

	run := func(cal StoreCalibration) {
		eng, err := NewEngine(st, scn, WithPlanCache(cache), WithStore(st, cal))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := eng.Run(q, WithOptimizer(OptimizerConfig{})); err != nil {
			t.Fatal(err)
		}
	}
	run(calA)
	if got := cache.Stats(); got.Misses != 1 {
		t.Fatalf("first calibrated run: %d misses, want 1", got.Misses)
	}
	run(calA) // same calibration: hit
	if got := cache.Stats(); got.Hits != 1 || got.Misses != 1 {
		t.Fatalf("repeat calibration must hit: %+v", got)
	}
	run(calB) // different measured physics: new entry
	if got := cache.Stats(); got.Misses != 2 {
		t.Fatalf("re-calibration must re-key: %+v", got)
	}
}
